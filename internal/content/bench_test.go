package content

import "testing"

// BenchmarkHashPiece measures piece verification cost at the default piece
// size — every byte a peer receives passes through this.
func BenchmarkHashPiece(b *testing.B) {
	data := make([]byte, DefaultPieceSize)
	SyntheticBody(NewObjectID(1, "x", 1), 0, data)
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		HashPiece(data)
	}
}

// BenchmarkSyntheticBody measures synthetic content generation, the edge
// server's data path in experiments.
func BenchmarkSyntheticBody(b *testing.B) {
	buf := make([]byte, 64<<10)
	oid := NewObjectID(1, "x", 1)
	b.SetBytes(int64(len(buf)))
	for i := 0; i < b.N; i++ {
		SyntheticBody(oid, int64(i)*int64(len(buf)), buf)
	}
}

// BenchmarkBitfieldMarshal measures bitfield wire encoding for a 4096-piece
// object (4 GiB at the default piece size).
func BenchmarkBitfieldMarshal(b *testing.B) {
	bf := NewBitfield(4096)
	for i := 0; i < 4096; i += 3 {
		bf.Set(i)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		enc := bf.MarshalBinary()
		if _, ok := UnmarshalBitfield(4096, enc); !ok {
			b.Fatal("decode failed")
		}
	}
}

// BenchmarkMemStorePut measures verified storage throughput.
func BenchmarkMemStorePut(b *testing.B) {
	obj, err := NewObject(1, "bench", 1, 1<<20, 64<<10, false)
	if err != nil {
		b.Fatal(err)
	}
	m, err := SyntheticManifest(obj)
	if err != nil {
		b.Fatal(err)
	}
	piece := make([]byte, obj.PieceLength(0))
	SyntheticBody(obj.ID, 0, piece)
	s := NewMemStore()
	b.SetBytes(int64(len(piece)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(m, 0, piece); err != nil {
			b.Fatal(err)
		}
	}
}
