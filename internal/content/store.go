package content

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Store holds verified pieces of objects on a peer or an edge server.
// Implementations must be safe for concurrent use.
type Store interface {
	// Put stores a piece after verifying it against the manifest. It is an
	// error to store an unverifiable piece.
	Put(m *Manifest, index int, data []byte) error
	// Get returns a copy of a stored piece, or ok=false if absent.
	Get(id ObjectID, index int) (data []byte, ok bool)
	// Have returns the bitfield of stored pieces for an object (a clone;
	// callers may mutate it). Objects never stored yield an empty bitfield
	// sized from the manifest registry, or nil if unknown.
	Have(id ObjectID) *Bitfield
	// Complete reports whether every piece of the object is stored.
	Complete(id ObjectID) bool
	// Drop removes all pieces of an object (cache eviction: peers keep a
	// file "in a local cache for a certain amount of time", §5.2).
	Drop(id ObjectID)
	// Objects lists the IDs with at least one stored piece.
	Objects() []ObjectID
}

// MemStore is an in-memory Store used by tests, the simulator and
// short-lived peers.
type MemStore struct {
	mu   sync.RWMutex
	objs map[ObjectID]*memObject
}

type memObject struct {
	n      int
	pieces map[int][]byte
	have   *Bitfield
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{objs: make(map[ObjectID]*memObject)}
}

// Put implements Store.
func (s *MemStore) Put(m *Manifest, index int, data []byte) error {
	if err := m.Verify(index, data); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.objs[m.Object.ID]
	if o == nil {
		o = &memObject{
			n:      m.Object.NumPieces(),
			pieces: make(map[int][]byte),
			have:   NewBitfield(m.Object.NumPieces()),
		}
		s.objs[m.Object.ID] = o
	}
	cp := make([]byte, len(data))
	copy(cp, data)
	o.pieces[index] = cp
	o.have.Set(index)
	return nil
}

// Get implements Store.
func (s *MemStore) Get(id ObjectID, index int) ([]byte, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o := s.objs[id]
	if o == nil {
		return nil, false
	}
	p, ok := o.pieces[index]
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(p))
	copy(cp, p)
	return cp, true
}

// Have implements Store.
func (s *MemStore) Have(id ObjectID) *Bitfield {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o := s.objs[id]
	if o == nil {
		return nil
	}
	return o.have.Clone()
}

// Complete implements Store.
func (s *MemStore) Complete(id ObjectID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	o := s.objs[id]
	return o != nil && o.have.Complete()
}

// Drop implements Store.
func (s *MemStore) Drop(id ObjectID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objs, id)
}

// Objects implements Store.
func (s *MemStore) Objects() []ObjectID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]ObjectID, 0, len(s.objs))
	for id := range s.objs {
		out = append(out, id)
	}
	return out
}

// FileStore is a disk-backed Store; each object version is one sparse file
// plus a sidecar bitfield, mirroring how the Download Manager keeps partial
// downloads resumable across restarts ("users can ... continue downloads
// that were aborted earlier", §3.3).
type FileStore struct {
	dir string

	mu   sync.Mutex
	objs map[ObjectID]*fileObject
}

type fileObject struct {
	obj  Object
	have *Bitfield
	path string
}

// NewFileStore creates a store rooted at dir, creating it if needed.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("content: filestore: %w", err)
	}
	return &FileStore{dir: dir, objs: make(map[ObjectID]*fileObject)}, nil
}

func (s *FileStore) object(m *Manifest) *fileObject {
	o := s.objs[m.Object.ID]
	if o == nil {
		o = &fileObject{
			obj:  m.Object,
			have: NewBitfield(m.Object.NumPieces()),
			path: filepath.Join(s.dir, m.Object.ID.String()+".part"),
		}
		s.objs[m.Object.ID] = o
	}
	return o
}

// Put implements Store.
func (s *FileStore) Put(m *Manifest, index int, data []byte) error {
	if err := m.Verify(index, data); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.object(m)
	f, err := os.OpenFile(o.path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("content: filestore put: %w", err)
	}
	defer f.Close()
	if _, err := f.WriteAt(data, m.Object.PieceOffset(index)); err != nil {
		return fmt.Errorf("content: filestore write: %w", err)
	}
	o.have.Set(index)
	return nil
}

// Get implements Store.
func (s *FileStore) Get(id ObjectID, index int) ([]byte, bool) {
	s.mu.Lock()
	o := s.objs[id]
	if o == nil || !o.have.Has(index) {
		s.mu.Unlock()
		return nil, false
	}
	length := o.obj.PieceLength(index)
	off := o.obj.PieceOffset(index)
	path := o.path
	s.mu.Unlock()

	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	buf := make([]byte, length)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, false
	}
	return buf, true
}

// Have implements Store.
func (s *FileStore) Have(id ObjectID) *Bitfield {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.objs[id]
	if o == nil {
		return nil
	}
	return o.have.Clone()
}

// Complete implements Store.
func (s *FileStore) Complete(id ObjectID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.objs[id]
	return o != nil && o.have.Complete()
}

// Drop implements Store.
func (s *FileStore) Drop(id ObjectID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if o := s.objs[id]; o != nil {
		os.Remove(o.path)
		delete(s.objs, id)
	}
}

// Objects implements Store.
func (s *FileStore) Objects() []ObjectID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ObjectID, 0, len(s.objs))
	for id := range s.objs {
		out = append(out, id)
	}
	return out
}
