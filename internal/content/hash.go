package content

import (
	"crypto/sha256"
	"fmt"
	"io"
)

// PieceHash is the SHA-256 digest of one piece.
type PieceHash [32]byte

// HashPiece computes the digest of a piece's bytes.
func HashPiece(data []byte) PieceHash {
	return sha256.Sum256(data)
}

// Manifest carries the validation material an edge server hands to peers:
// the secure content ID plus the per-piece hashes. A peer that "cannot
// validate a file piece ... discards the piece and does not upload it to
// other peers" (§3.5).
type Manifest struct {
	Object Object
	Hashes []PieceHash
}

// BuildManifest reads the full object content from r and produces its
// manifest. The reader must supply exactly obj.Size bytes.
func BuildManifest(obj *Object, r io.Reader) (*Manifest, error) {
	m := &Manifest{Object: *obj, Hashes: make([]PieceHash, 0, obj.NumPieces())}
	buf := make([]byte, obj.PieceSize)
	var total int64
	for i := 0; i < obj.NumPieces(); i++ {
		n := obj.PieceLength(i)
		if _, err := io.ReadFull(r, buf[:n]); err != nil {
			return nil, fmt.Errorf("content: manifest read piece %d: %w", i, err)
		}
		total += int64(n)
		m.Hashes = append(m.Hashes, HashPiece(buf[:n]))
	}
	if total != obj.Size {
		return nil, fmt.Errorf("content: manifest covered %d bytes, object is %d", total, obj.Size)
	}
	return m, nil
}

// Verify checks a piece against the manifest. It returns an error when the
// index is out of range, the length is wrong, or the hash does not match.
func (m *Manifest) Verify(index int, data []byte) error {
	if index < 0 || index >= len(m.Hashes) {
		return fmt.Errorf("content: piece index %d out of range [0,%d)", index, len(m.Hashes))
	}
	if want := m.Object.PieceLength(index); len(data) != want {
		return fmt.Errorf("content: piece %d has %d bytes, want %d", index, len(data), want)
	}
	if HashPiece(data) != m.Hashes[index] {
		return fmt.Errorf("content: piece %d failed hash verification", index)
	}
	return nil
}

// SyntheticBody deterministically generates the byte at a given offset of a
// synthetic object. Experiments and tests use synthetic bodies so that edge
// servers, peers and the simulator can all materialize identical content for
// an object without shipping real files around.
func SyntheticBody(id ObjectID, off int64, p []byte) {
	// Simple keyed byte stream: cheap, deterministic, and incompressible
	// enough to exercise hashing honestly.
	for i := range p {
		o := off + int64(i)
		p[i] = id[o%32] ^ byte(o) ^ byte(o>>8) ^ byte(o>>16)
	}
}

// SyntheticReader returns a reader producing size bytes of the synthetic
// body of the object.
func SyntheticReader(id ObjectID, size int64) io.Reader {
	return &synthReader{id: id, remaining: size}
}

type synthReader struct {
	id        ObjectID
	off       int64
	remaining int64
}

func (r *synthReader) Read(p []byte) (int, error) {
	if r.remaining == 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > r.remaining {
		p = p[:r.remaining]
	}
	SyntheticBody(r.id, r.off, p)
	r.off += int64(len(p))
	r.remaining -= int64(len(p))
	return len(p), nil
}

// SyntheticManifest builds the manifest of a synthetic object without
// allocating the whole body.
func SyntheticManifest(obj *Object) (*Manifest, error) {
	return BuildManifest(obj, SyntheticReader(obj.ID, obj.Size))
}
