package content

import (
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"netsession/internal/telemetry"
)

func TestDiskStore(t *testing.T) {
	s, err := OpenDiskStore(t.TempDir(), DiskStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	testStore(t, s)
}

// fillDiskStore stores every piece of a fresh object and returns the store's
// root, the object and its manifest.
func fillDiskStore(t *testing.T, size int64) (string, *Object, *Manifest) {
	t.Helper()
	dir := t.TempDir()
	s, err := OpenDiskStore(dir, DiskStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	obj, m := testObject(t, size)
	for i := 0; i < obj.NumPieces(); i++ {
		buf := make([]byte, obj.PieceLength(i))
		SyntheticBody(obj.ID, obj.PieceOffset(i), buf)
		if err := s.Put(m, i, buf); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
	}
	return dir, obj, m
}

func diskPiecePath(root string, id ObjectID, idx int) string {
	return filepath.Join(root, "objects", hex.EncodeToString(id[:]), pieceName(idx))
}

func TestDiskStoreRecoveryAcrossRestart(t *testing.T) {
	dir, obj, m := fillDiskStore(t, 40_000)

	// "Restart": a fresh store over the same directory rebuilds the index
	// from disk and re-verifies every piece.
	s2, err := OpenDiskStore(dir, DiskStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Complete(obj.ID) {
		t.Fatal("recovered store incomplete")
	}
	st := s2.Recovery()
	if st.Objects != 1 || st.Pieces != obj.NumPieces() || st.CorruptPieces != 0 {
		t.Fatalf("recovery stats %+v", st)
	}
	for i := 0; i < obj.NumPieces(); i++ {
		data, ok := s2.Get(obj.ID, i)
		if !ok {
			t.Fatalf("piece %d missing after recovery", i)
		}
		if err := m.Verify(i, data); err != nil {
			t.Fatalf("piece %d: %v", i, err)
		}
	}
	if mf := s2.Manifest(obj.ID); mf == nil || mf.Object.ID != obj.ID {
		t.Fatal("manifest not recovered")
	}
}

// TestDiskStoreQuarantinesCorruptPieces is the crash/corruption matrix of
// the recovery scan: one piece with a flipped bit, one truncated, the rest
// healthy. The corrupt two are quarantined (bits cleared, files moved,
// counter bumped); a subsequent Put — the download path's refetch — heals
// them.
func TestDiskStoreQuarantinesCorruptPieces(t *testing.T) {
	dir, obj, m := fillDiskStore(t, 40_000)
	n := obj.NumPieces()
	if n < 4 {
		t.Fatalf("need >=4 pieces, have %d", n)
	}

	// Flip one bit in piece 1.
	p1 := diskPiecePath(dir, obj.ID, 1)
	raw, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	raw[7] ^= 0x01
	if err := os.WriteFile(p1, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	// Truncate piece 2 — the torn write a crash mid-write would leave if
	// the atomic rename discipline were ever bypassed.
	p2 := diskPiecePath(dir, obj.ID, 2)
	if err := os.Truncate(p2, 10); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	s2, err := OpenDiskStore(dir, DiskStoreOptions{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	st := s2.Recovery()
	if st.CorruptPieces != 2 {
		t.Fatalf("recovery stats %+v, want 2 corrupt pieces", st)
	}
	if got := reg.Snapshot().Counters["store_recovery_corrupt_total"]; got != 2 {
		t.Fatalf("store_recovery_corrupt_total=%d want 2", got)
	}
	bf := s2.Have(obj.ID)
	if bf.Has(1) || bf.Has(2) {
		t.Fatal("corrupt pieces still marked held")
	}
	if bf.Count() != n-2 {
		t.Fatalf("recovered %d pieces, want %d", bf.Count(), n-2)
	}
	for _, idx := range []int{1, 2} {
		if _, ok := s2.Get(obj.ID, idx); ok {
			t.Fatalf("quarantined piece %d served", idx)
		}
	}
	quar, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil {
		t.Fatal(err)
	}
	if len(quar) != 2 {
		t.Fatalf("quarantine holds %d files, want 2", len(quar))
	}

	// The refetch path: storing the pieces again (as a resumed download
	// would after the edge re-serves them) heals the object.
	for _, idx := range []int{1, 2} {
		buf := make([]byte, obj.PieceLength(idx))
		SyntheticBody(obj.ID, obj.PieceOffset(idx), buf)
		if err := s2.Put(m, idx, buf); err != nil {
			t.Fatalf("refetch Put(%d): %v", idx, err)
		}
	}
	if !s2.Complete(obj.ID) {
		t.Fatal("object incomplete after refetching quarantined pieces")
	}
}

func TestDiskStoreQuarantinesBadManifest(t *testing.T) {
	dir, obj, _ := fillDiskStore(t, 20_000)
	mpath := filepath.Join(dir, "objects", hex.EncodeToString(obj.ID[:]), diskManifestName)
	if err := os.WriteFile(mpath, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenDiskStore(dir, DiskStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st := s2.Recovery(); st.QuarantinedObjects != 1 || st.Objects != 0 {
		t.Fatalf("recovery stats %+v, want 1 quarantined object", st)
	}
	if bf := s2.Have(obj.ID); bf != nil {
		t.Fatal("object with bad manifest still indexed")
	}
}

// TestDiskStoreGetQuarantinesRot covers corruption that happens after the
// recovery scan: Get re-verifies and reports the piece absent so the caller
// refetches instead of uploading poison.
func TestDiskStoreGetQuarantinesRot(t *testing.T) {
	dir, obj, _ := fillDiskStore(t, 20_000)
	s, err := OpenDiskStore(dir, DiskStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p0 := diskPiecePath(dir, obj.ID, 0)
	raw, err := os.ReadFile(p0)
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0xff
	if err := os.WriteFile(p0, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(obj.ID, 0); ok {
		t.Fatal("rotted piece served")
	}
	if bf := s.Have(obj.ID); bf.Has(0) {
		t.Fatal("rotted piece still marked held")
	}
}

func TestDiskStoreDropRemovesObjectDir(t *testing.T) {
	dir, obj, _ := fillDiskStore(t, 20_000)
	s, err := OpenDiskStore(dir, DiskStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s.Drop(obj.ID)
	if _, err := os.Stat(filepath.Join(dir, "objects", hex.EncodeToString(obj.ID[:]))); !os.IsNotExist(err) {
		t.Fatal("object directory survived Drop")
	}
	// A restart must not resurrect it.
	s2, err := OpenDiskStore(dir, DiskStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s2.Objects()) != 0 {
		t.Fatal("dropped object recovered")
	}
}
