package content

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func testObject(t testing.TB, size int64) (*Object, *Manifest) {
	t.Helper()
	obj, err := NewObject(1001, "https://example.test/installer.bin", 1, size, 4096, true)
	if err != nil {
		t.Fatal(err)
	}
	m, err := SyntheticManifest(obj)
	if err != nil {
		t.Fatal(err)
	}
	return obj, m
}

func TestObjectIDVersioning(t *testing.T) {
	a := NewObjectID(1, "u", 1)
	b := NewObjectID(1, "u", 2)
	c := NewObjectID(2, "u", 1)
	d := NewObjectID(1, "v", 1)
	if a == b || a == c || a == d || b == c {
		t.Error("object IDs must differ across version, CP and URL")
	}
	if a != NewObjectID(1, "u", 1) {
		t.Error("object IDs must be deterministic")
	}
}

func TestPieceGeometry(t *testing.T) {
	cases := []struct {
		size      int64
		pieceSize int
		n         int
		lastLen   int
	}{
		{0, 100, 0, 0},
		{1, 100, 1, 1},
		{100, 100, 1, 100},
		{101, 100, 2, 1},
		{250, 100, 3, 50},
	}
	for _, c := range cases {
		obj := &Object{Size: c.size, PieceSize: c.pieceSize}
		if got := obj.NumPieces(); got != c.n {
			t.Errorf("size=%d: NumPieces=%d want %d", c.size, got, c.n)
		}
		if c.n > 0 {
			if got := obj.PieceLength(c.n - 1); got != c.lastLen {
				t.Errorf("size=%d: last PieceLength=%d want %d", c.size, got, c.lastLen)
			}
		}
		if got := obj.PieceLength(c.n); got != 0 {
			t.Errorf("size=%d: out-of-range PieceLength=%d want 0", c.size, got)
		}
		var total int64
		for i := 0; i < c.n; i++ {
			total += int64(obj.PieceLength(i))
		}
		if total != c.size {
			t.Errorf("size=%d: piece lengths sum to %d", c.size, total)
		}
	}
}

func TestManifestVerify(t *testing.T) {
	obj, m := testObject(t, 10000)
	if len(m.Hashes) != obj.NumPieces() {
		t.Fatalf("manifest has %d hashes, want %d", len(m.Hashes), obj.NumPieces())
	}
	buf := make([]byte, obj.PieceLength(0))
	SyntheticBody(obj.ID, 0, buf)
	if err := m.Verify(0, buf); err != nil {
		t.Fatalf("valid piece rejected: %v", err)
	}
	buf[10] ^= 0xff
	if err := m.Verify(0, buf); err == nil {
		t.Fatal("corrupted piece accepted")
	}
	if err := m.Verify(0, buf[:10]); err == nil {
		t.Fatal("short piece accepted")
	}
	if err := m.Verify(-1, buf); err == nil {
		t.Fatal("negative index accepted")
	}
	if err := m.Verify(len(m.Hashes), buf); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestSyntheticReaderMatchesBody(t *testing.T) {
	id := NewObjectID(5, "x", 3)
	all, err := io.ReadAll(SyntheticReader(id, 10_000))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 10_000 {
		t.Fatalf("read %d bytes", len(all))
	}
	// Chunked generation must agree with the stream regardless of offsets.
	chunk := make([]byte, 777)
	for off := int64(0); off < 10_000; off += 777 {
		n := int64(len(chunk))
		if off+n > 10_000 {
			n = 10_000 - off
		}
		SyntheticBody(id, off, chunk[:n])
		if !bytes.Equal(chunk[:n], all[off:off+n]) {
			t.Fatalf("mismatch at offset %d", off)
		}
	}
}

func TestBitfieldBasics(t *testing.T) {
	b := NewBitfield(130)
	if b.Count() != 0 || b.Complete() {
		t.Fatal("fresh bitfield should be empty")
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	b.Set(200) // ignored
	b.Set(-1)  // ignored
	if b.Count() != 3 {
		t.Fatalf("Count=%d want 3", b.Count())
	}
	if !b.Has(64) || b.Has(63) || b.Has(200) {
		t.Fatal("Has wrong")
	}
	b.Clear(64)
	if b.Has(64) || b.Count() != 2 {
		t.Fatal("Clear wrong")
	}
	for i := 0; i < 130; i++ {
		b.Set(i)
	}
	if !b.Complete() {
		t.Fatal("Complete false after setting all")
	}
}

func TestBitfieldRoundTrip(t *testing.T) {
	f := func(n uint8, setBits []uint16) bool {
		size := int(n)
		b := NewBitfield(size)
		for _, s := range setBits {
			if size > 0 {
				b.Set(int(s) % size)
			}
		}
		enc := b.MarshalBinary()
		dec, ok := UnmarshalBitfield(size, enc)
		if !ok {
			return false
		}
		for i := 0; i < size; i++ {
			if b.Has(i) != dec.Has(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitfieldUnmarshalRejectsPadding(t *testing.T) {
	enc := []byte{0xff} // 8 bits set for a 5-piece field
	if _, ok := UnmarshalBitfield(5, enc); ok {
		t.Error("padding bits set should be rejected")
	}
	if _, ok := UnmarshalBitfield(5, []byte{0xf8, 0x00}); ok {
		t.Error("wrong length should be rejected")
	}
	if bf, ok := UnmarshalBitfield(5, []byte{0xf8}); !ok || bf.Count() != 5 {
		t.Error("valid encoding rejected")
	}
}

func TestBitfieldFirstMissingIn(t *testing.T) {
	mine := NewBitfield(100)
	theirs := NewBitfield(100)
	if got := mine.FirstMissingIn(theirs); got != -1 {
		t.Fatalf("empty peer: got %d want -1", got)
	}
	theirs.Set(70)
	if got := mine.FirstMissingIn(theirs); got != 70 {
		t.Fatalf("got %d want 70", got)
	}
	mine.Set(70)
	if got := mine.FirstMissingIn(theirs); got != -1 {
		t.Fatalf("already have it: got %d want -1", got)
	}
}

func testStore(t *testing.T, s Store) {
	obj, m := testObject(t, 12_345)
	n := obj.NumPieces()

	if bf := s.Have(obj.ID); bf != nil {
		t.Fatal("unknown object should have nil bitfield")
	}
	// Store all pieces out of order.
	for i := n - 1; i >= 0; i-- {
		buf := make([]byte, obj.PieceLength(i))
		SyntheticBody(obj.ID, obj.PieceOffset(i), buf)
		if err := s.Put(m, i, buf); err != nil {
			t.Fatalf("Put(%d): %v", i, err)
		}
		if i == n-1 && s.Complete(obj.ID) {
			t.Fatal("Complete true with missing pieces")
		}
	}
	if !s.Complete(obj.ID) {
		t.Fatal("Complete false after storing all pieces")
	}
	for i := 0; i < n; i++ {
		got, ok := s.Get(obj.ID, i)
		if !ok {
			t.Fatalf("Get(%d) missing", i)
		}
		if err := m.Verify(i, got); err != nil {
			t.Fatalf("stored piece %d corrupt: %v", i, err)
		}
	}
	// Corrupt pieces are rejected.
	bad := make([]byte, obj.PieceLength(0))
	if err := s.Put(m, 0, bad); err == nil {
		t.Fatal("corrupt piece stored")
	}
	if got := len(s.Objects()); got != 1 {
		t.Fatalf("Objects()=%d want 1", got)
	}
	s.Drop(obj.ID)
	if _, ok := s.Get(obj.ID, 0); ok {
		t.Fatal("Get after Drop succeeded")
	}
	if s.Complete(obj.ID) {
		t.Fatal("Complete after Drop")
	}
}

func TestMemStore(t *testing.T) { testStore(t, NewMemStore()) }

func TestFileStore(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	testStore(t, fs)
}

func TestMemStoreGetReturnsCopy(t *testing.T) {
	s := NewMemStore()
	obj, m := testObject(t, 4096)
	buf := make([]byte, 4096)
	SyntheticBody(obj.ID, 0, buf)
	if err := s.Put(m, 0, buf); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Get(obj.ID, 0)
	got[0] ^= 0xff
	again, _ := s.Get(obj.ID, 0)
	if again[0] == got[0] {
		t.Error("Get must return a defensive copy")
	}
}
