package sim

import (
	"netsession/internal/faults"
	"netsession/internal/geo"
	"netsession/internal/selection"
	"netsession/internal/telemetry"
	"netsession/internal/trace"
)

// ScenarioConfig parameterizes one simulated deployment month.
type ScenarioConfig struct {
	Seed int64

	// Workers bounds how many region shards simulate concurrently.
	// Non-positive selects one worker per available CPU; 1 runs the shards
	// sequentially in region order. Results are byte-identical for every
	// worker count: shards share no mutable state and their logs are
	// merged by (timestamp, region).
	Workers int

	// Population and workload scale (the paper's trace has 26M peers and
	// 12.5M downloads; experiments run a proportionally smaller world).
	NumPeers       int
	Days           int
	TotalDownloads int

	Atlas    geo.AtlasConfig
	Catalog  trace.CatalogConfig
	Workload trace.WorkloadConfig

	// Policy is the control plane's selection policy.
	Policy selection.Policy
	// MaxServersPerDownload caps concurrent serving peers per download
	// (the client's swarm fan-out).
	MaxServersPerDownload int
	// ConnFailureProb is the chance an instructed peer connection fails
	// anyway (stale directory entry, host asleep); additional candidates
	// are used in its place (§3.7).
	ConnFailureProb float64

	// EdgePerConnMbps is the backstop rate of the single always-open edge
	// connection while peers are serving a download (§3.3).
	EdgePerConnMbps float64
	// EdgeOnlyMbps is the aggregate edge throughput when no peers serve a
	// download (p2p disabled, or none found): the DLM opens multiple edge
	// connections and is limited only by the access link.
	EdgeOnlyMbps float64
	// BackstopEnabled disables the edge connection when false (the
	// pure-p2p ablation).
	BackstopEnabled bool

	// Session churn: exponential on/off times, in hours.
	SessionOnHours  float64
	SessionOffHours float64
	// RefreshIntervalHours is how often an online peer re-announces its
	// cached objects, keeping its directory soft state fresh.
	RefreshIntervalHours float64
	// CacheTTLHours is how long completed downloads stay registered.
	CacheTTLHours float64
	// PerObjectUploadCap caps serving sessions per (peer, object) (§3.9);
	// zero disables the cap.
	PerObjectUploadCap int
	// MaxUploadConnsPerPeer is the client's globally configured limit on
	// simultaneous upload connections (§3.4).
	MaxUploadConnsPerPeer int
	// DNFailureAtDay, when positive, wipes every region directory at the
	// start of that day — the large-scale DN failure of §3.8. Soft state
	// recovers via the peers' periodic re-announcements.
	DNFailureAtDay int
	// SeedCopiesPerObject pre-seeds each p2p-enabled object at this many
	// upload-enabled peers at time zero. The hybrid system needs no seeds
	// (the edge is the origin); the pure-p2p ablation does.
	SeedCopiesPerObject int
	// UploadEnabledOverride, when in [0,1], replaces the per-customer
	// Table 4 upload-enable defaults with a uniform fraction — the
	// contribution-sweep ablation. Negative keeps the calibrated defaults.
	UploadEnabledOverride float64

	// Streaming delivery (§3.4). When StreamBitrateBps and StreamFraction
	// are both positive, that fraction of workload requests is consumed as
	// a deadline-driven stream: playback starts once StreamStartupBytes
	// have arrived and then drains at the bitrate, and the flow's record
	// carries a StreamStats sub-record (startup delay, rebuffers, deadline
	// misses) exactly like a live streaming client's log entry. Draws come
	// from a dedicated per-shard RNG stream, so the zero value (disabled)
	// leaves base scenarios byte-identical.
	StreamFraction     float64
	StreamBitrateBps   int64
	StreamStartupBytes int64 // zero: two pieces
	StreamPieceBytes   int64 // zero: the catalog piece size

	// Outcome model (§5.2): a small immediate-abort probability plus an
	// abandonment clock make long downloads terminate more often
	// (Figure 7); failures are rare and mostly user-side.
	ImmediateAbortProb float64
	AbortRatePerHour   float64
	FailOtherProb      float64
	FailSystemInfra    float64
	FailSystemP2P      float64

	// Faults configures the extra mid-download server-failure events of the
	// chaos harness. It draws from its own seeded RNG, so the zero value
	// (disabled) leaves every base-scenario draw — and therefore the whole
	// result — byte-identical.
	Faults faults.SimConfig

	// RegionSample, when non-empty, simulates only the listed network
	// regions: peers homed elsewhere are never instantiated and no events
	// run for their shards. Region shards are causally independent — no
	// cross-shard reads, per-shard RNG streams derived from (seed, region)
	// — so the sampled shards' logs are byte-identical to the same regions
	// of a full run. This is how tests exercise paper-scale per-shard
	// populations without paying for all twelve shards.
	RegionSample []geo.NetworkRegion

	// Telemetry is the metrics registry; nil creates a private one,
	// returned in Result.Telemetry either way.
	Telemetry *telemetry.Registry
	// SnapshotIntervalHours is how often (in virtual time) the telemetry
	// gauges refresh and a snapshot line goes to Logf; zero selects 24h.
	SnapshotIntervalHours float64
	// Logf receives the snapshot lines; nil discards them (the gauges still
	// update).
	Logf func(format string, args ...any)
}

// DefaultScenario returns the scale used by the experiment harness: large
// enough that every figure's shape is visible, small enough to run in
// seconds.
func DefaultScenario() ScenarioConfig {
	atlas := geo.DefaultAtlasConfig()
	cat := trace.DefaultCatalogConfig()
	wl := trace.DefaultWorkloadConfig()
	// Directory entries are refreshed while peers stay online, so the
	// selector's soft-state TTL only filters genuinely stale state.
	policy := selection.DefaultPolicy()
	policy.SoftStateTTLMs = 12 * 3600 * 1000
	return ScenarioConfig{
		Seed:           1,
		NumPeers:       20_000,
		Days:           31,
		TotalDownloads: 100_000,

		Atlas:    atlas,
		Catalog:  cat,
		Workload: wl,

		Policy:                policy,
		MaxServersPerDownload: 40,
		ConnFailureProb:       0.15,

		EdgePerConnMbps: 2.5,
		EdgeOnlyMbps:    12,
		BackstopEnabled: true,

		SessionOnHours:        10,
		SessionOffHours:       8,
		RefreshIntervalHours:  6,
		CacheTTLHours:         14 * 24,
		PerObjectUploadCap:    50,
		MaxUploadConnsPerPeer: 8,
		UploadEnabledOverride: -1,

		ImmediateAbortProb: 0.02,
		AbortRatePerHour:   0.08,
		FailOtherProb:      0.028,
		FailSystemInfra:    0.001,
		FailSystemP2P:      0.002,
	}
}

// StreamingScenario is the deadline-driven delivery family: a hotter Zipf
// catalog (popular episodes dominate), shorter sessions so serving peers
// churn mid-stream, and most requests consumed as 3 Mbps streams against
// the heterogeneous access-link population.
func StreamingScenario() ScenarioConfig {
	cfg := DefaultScenario()
	cfg.Catalog.ZipfAlpha = 1.1
	cfg.SessionOnHours = 4
	cfg.SessionOffHours = 6
	cfg.StreamFraction = 0.8
	cfg.StreamBitrateBps = 3_000_000
	cfg.StreamStartupBytes = 2 * int64(cfg.Catalog.PieceSize)
	cfg.StreamPieceBytes = int64(cfg.Catalog.PieceSize)
	return cfg
}

// SmallScenario is a fast scale for unit tests and benches.
func SmallScenario() ScenarioConfig {
	cfg := DefaultScenario()
	cfg.NumPeers = 4000
	cfg.Days = 10
	cfg.TotalDownloads = 15_000
	cfg.Catalog.FilesPerCustomer = 150
	cfg.Atlas.TailCountries = 20
	return cfg
}

// XLScenario is the region-sharded simulator's scale target: an order of
// magnitude more peers than SmallScenario and three times DefaultScenario,
// still a full month of virtual time. `make bench` runs it under a
// wall-clock budget to catch hot-path regressions at scale.
func XLScenario() ScenarioConfig {
	cfg := DefaultScenario()
	cfg.NumPeers = 60_000
	cfg.Days = 31
	cfg.TotalDownloads = 300_000
	return cfg
}

// MScenario is the quarter-million-peer month: the intermediate step between
// XL and the paper-scale XXL tier, sized so a full run still fits an
// attended benchmark session.
func MScenario() ScenarioConfig {
	cfg := DefaultScenario()
	cfg.NumPeers = 250_000
	cfg.Days = 31
	cfg.TotalDownloads = 1_250_000
	return cfg
}

// XXLScenario is the million-peer simulated month — the memory-lean engine's
// scale target (the paper's trace has 26M peers; one simulated million is
// the same per-shard order of magnitude across 12 regions). Runs are long:
// the gated BenchmarkSimXXL budgets tens of minutes of wall clock and
// asserts peak RSS, and everything downstream (segment export, analyzer)
// must stream rather than materialize.
func XXLScenario() ScenarioConfig {
	cfg := DefaultScenario()
	cfg.NumPeers = 1_000_000
	cfg.Days = 31
	cfg.TotalDownloads = 2_000_000
	return cfg
}
