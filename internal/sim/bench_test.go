package sim

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkEngineEvents measures raw event-loop throughput: schedule and
// run one million no-op events.
func BenchmarkEngineEvents(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var e Engine
		const n = 1_000_000
		for k := 0; k < n; k++ {
			e.At(int64(k%1000), func() {})
		}
		if got := e.Run(1000); got != n {
			b.Fatalf("ran %d events", got)
		}
	}
}

// BenchmarkSimSmall runs the unit-test scale end to end — the bench-smoke
// canary for whole-sim throughput and allocation regressions.
func BenchmarkSimSmall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(SmallScenario()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimWorkers sweeps the shard worker count at experiment scale.
// The outputs are byte-identical across the sweep (see
// TestDeterminismAcrossWorkers); only the wall clock may differ.
func BenchmarkSimWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := DefaultScenario()
				cfg.Workers = w
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// xlWallBudget is the wall-clock ceiling for one XL-scale run in `make
// bench`; blowing it means a hot-path regression, not a slow machine — the
// budget is ~5x the post-sharding wall time on one CPU.
const xlWallBudget = 120 * time.Second

// BenchmarkSimXL runs the 60k-peer / 300k-download month — the scale target
// of the region-sharded simulator — and fails if it exceeds the wall-clock
// budget.
func BenchmarkSimXL(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		if _, err := Run(XLScenario()); err != nil {
			b.Fatal(err)
		}
		if wall := time.Since(start); wall > xlWallBudget {
			b.Fatalf("XL scenario took %s, budget %s", wall, xlWallBudget)
		}
	}
}
