package sim

import "testing"

// BenchmarkEngineEvents measures raw event-loop throughput: schedule and
// run one million no-op events.
func BenchmarkEngineEvents(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var e Engine
		const n = 1_000_000
		for k := 0; k < n; k++ {
			e.At(int64(k%1000), func() {})
		}
		if got := e.Run(1000); got != n {
			b.Fatalf("ran %d events", got)
		}
	}
}
