package sim

import (
	"fmt"
	"os"
	"syscall"
	"testing"
	"time"
)

// BenchmarkEngineEvents measures raw event-loop throughput: schedule and
// run one million no-op events.
func BenchmarkEngineEvents(b *testing.B) {
	b.ReportAllocs()
	nop := func(uint64) {}
	for i := 0; i < b.N; i++ {
		var e Engine
		const n = 1_000_000
		for k := 0; k < n; k++ {
			e.At(int64(k%1000), nop, uint64(k))
		}
		if got := e.Run(1000); got != n {
			b.Fatalf("ran %d events", got)
		}
	}
}

// BenchmarkSimSmall runs the unit-test scale end to end — the bench-smoke
// canary for whole-sim throughput and allocation regressions.
func BenchmarkSimSmall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(SmallScenario()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimWorkers sweeps the shard worker count at experiment scale.
// The outputs are byte-identical across the sweep (see
// TestDeterminismAcrossWorkers); only the wall clock may differ.
func BenchmarkSimWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := DefaultScenario()
				cfg.Workers = w
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// megaSimGate is the environment variable that unlocks the M and XXL tiers:
// they run for minutes to tens of minutes, so they only run when asked for
// explicitly (NETSESSION_MEGASIM=1), never in routine CI.
const megaSimGate = "NETSESSION_MEGASIM"

// simTiers is the scenario ladder with per-tier wall-clock and peak-RSS
// budgets. Blowing a budget means a hot-path or memory regression, not a
// slow machine — each wall budget is several times the measured time on one
// CPU. Tiers whose budget exceeds shortTierBudget are skipped (not failed)
// under -short; gated tiers are skipped unless megaSimGate is set.
var simTiers = []struct {
	name  string
	cfg   func() ScenarioConfig
	wall  time.Duration
	rssMB int64 // peak-RSS ceiling; 0 = report only
	gated bool
}{
	{name: "XL", cfg: XLScenario, wall: 120 * time.Second},
	{name: "M", cfg: MScenario, wall: 600 * time.Second, rssMB: 6144, gated: true},
	{name: "XXL", cfg: XXLScenario, wall: 1800 * time.Second, rssMB: 20480, gated: true},
}

// shortTierBudget is the largest tier wall budget `go test -short -bench`
// is willing to pay.
const shortTierBudget = 150 * time.Second

// peakRSSMB reads the process's lifetime peak resident set.
func peakRSSMB(tb testing.TB) int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		tb.Fatalf("getrusage: %v", err)
	}
	return ru.Maxrss / 1024 // Maxrss is KiB on Linux
}

// BenchmarkSimTiers runs the scenario ladder, enforcing each tier's wall
// and memory budget. `make bench` runs the ungated tiers; the M and XXL
// paper-scale tiers need NETSESSION_MEGASIM=1.
func BenchmarkSimTiers(b *testing.B) {
	for _, tier := range simTiers {
		b.Run(tier.name, func(b *testing.B) {
			if tier.gated && os.Getenv(megaSimGate) == "" {
				b.Skipf("set %s=1 to run the %s tier", megaSimGate, tier.name)
			}
			if testing.Short() && tier.wall > shortTierBudget {
				b.Skipf("%s tier budget %s exceeds the -short limit %s", tier.name, tier.wall, shortTierBudget)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				start := time.Now()
				res, err := Run(tier.cfg())
				if err != nil {
					b.Fatal(err)
				}
				wall := time.Since(start)
				b.ReportMetric(float64(res.Events)/wall.Seconds(), "events/sec")
				if wall > tier.wall {
					b.Fatalf("%s scenario took %s, budget %s", tier.name, wall, tier.wall)
				}
				rss := peakRSSMB(b)
				b.ReportMetric(float64(rss), "peak-RSS-MB")
				if tier.rssMB > 0 && rss > tier.rssMB {
					b.Fatalf("%s scenario peak RSS %d MB, budget %d MB", tier.name, rss, tier.rssMB)
				}
			}
		})
	}
}
