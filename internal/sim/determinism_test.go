package sim

import (
	"bytes"
	"reflect"
	"testing"

	"netsession/internal/analysis"
)

// TestDeterminismAcrossWorkers is the sharding contract: one seed must
// produce byte-identical logs — downloads including per-peer attributions,
// registrations, logins — whether the region shards run sequentially
// (Workers=1, the reference ordering) or on a parallel worker pool, and the
// analyses over those logs must agree to the last bit. Shards share no
// mutable state and the merge order is a pure function of the records, so
// worker count and goroutine scheduling must be invisible in the output.
func TestDeterminismAcrossWorkers(t *testing.T) {
	run := func(workers int) *Result {
		return runSmall(t, func(c *ScenarioConfig) {
			tinyScenario(c)
			c.Workers = workers
		})
	}
	headlines := func(r *Result) analysis.Headlines {
		in := &analysis.Input{
			Log: r.Log, Pop: r.Pop, Catalog: r.Catalog,
			Atlas: r.Atlas, Scape: r.Scape,
		}
		return analysis.ComputeHeadlines(in, 5)
	}

	ref := run(1)
	refLog := logBytes(t, ref)
	refHead := headlines(ref)
	if ref.Events == 0 {
		t.Fatal("reference run executed no events")
	}

	for _, workers := range []int{2, 4} {
		got := run(workers)
		if !bytes.Equal(logBytes(t, got), refLog) {
			t.Fatalf("workers=%d log differs from the sequential reference", workers)
		}
		if got.Events != ref.Events {
			t.Fatalf("workers=%d executed %d events, reference %d", workers, got.Events, ref.Events)
		}
		if h := headlines(got); !reflect.DeepEqual(h, refHead) {
			t.Fatalf("workers=%d headline numbers differ from the sequential reference:\n%+v\nvs\n%+v", workers, h, refHead)
		}
	}
}
