package sim

import (
	"bytes"
	"net/netip"
	"reflect"
	"testing"

	"netsession/internal/accounting"
	"netsession/internal/analysis"
	"netsession/internal/geo"
	"netsession/internal/id"
)

// TestDeterminismAcrossWorkers is the sharding contract: one seed must
// produce byte-identical logs — downloads including per-peer attributions,
// registrations, logins — whether the region shards run sequentially
// (Workers=1, the reference ordering) or on a parallel worker pool, and the
// analyses over those logs must agree to the last bit. Shards share no
// mutable state and the merge order is a pure function of the records, so
// worker count and goroutine scheduling must be invisible in the output.
func TestDeterminismAcrossWorkers(t *testing.T) {
	run := func(workers int) *Result {
		return runSmall(t, func(c *ScenarioConfig) {
			tinyScenario(c)
			c.Workers = workers
		})
	}
	headlines := func(r *Result) analysis.Headlines {
		in := &analysis.Input{
			Log: r.Log, Pop: r.Pop, Catalog: r.Catalog,
			Atlas: r.Atlas, Scape: r.Scape,
		}
		return analysis.ComputeHeadlines(in, 5)
	}

	ref := run(1)
	refLog := logBytes(t, ref)
	refHead := headlines(ref)
	if ref.Events == 0 {
		t.Fatal("reference run executed no events")
	}

	for _, workers := range []int{2, 4} {
		got := run(workers)
		if !bytes.Equal(logBytes(t, got), refLog) {
			t.Fatalf("workers=%d log differs from the sequential reference", workers)
		}
		if got.Events != ref.Events {
			t.Fatalf("workers=%d executed %d events, reference %d", workers, got.Events, ref.Events)
		}
		if h := headlines(got); !reflect.DeepEqual(h, refHead) {
			t.Fatalf("workers=%d headline numbers differ from the sequential reference:\n%+v\nvs\n%+v", workers, h, refHead)
		}
	}
}

// TestRegionSampleMatchesFullRun is the RegionSample contract at small
// scale: because region shards are causally independent, a run that
// simulates only two regions must reproduce exactly the records a full run
// attributes to those regions, in the same merge order.
func TestRegionSampleMatchesFullRun(t *testing.T) {
	sample := []geo.NetworkRegion{1, 4}
	full := runSmall(t, tinyScenario)
	part := runSmall(t, func(c *ScenarioConfig) {
		tinyScenario(c)
		c.RegionSample = sample
	})

	inSample := func(ip netip.Addr) bool {
		r := geo.RegionOf(full.Scape.MustLookup(ip))
		return r == sample[0] || r == sample[1]
	}
	var wantDl []accounting.DownloadRecord
	for _, d := range full.Log.Downloads {
		if inSample(d.IP) {
			wantDl = append(wantDl, d)
		}
	}
	if len(wantDl) == 0 {
		t.Fatal("full run has no downloads in the sampled regions")
	}
	if len(part.Log.Downloads) != len(wantDl) {
		t.Fatalf("sampled run has %d downloads, full run has %d in those regions",
			len(part.Log.Downloads), len(wantDl))
	}
	for i := range wantDl {
		if !reflect.DeepEqual(part.Log.Downloads[i], wantDl[i]) {
			t.Fatalf("download %d differs between sampled and full run", i)
		}
	}
	sampledGUID := make(map[id.GUID]bool)
	for _, spec := range full.Pop.Peers {
		if r := geo.RegionOf(spec.Home); r == sample[0] || r == sample[1] {
			sampledGUID[spec.GUID] = true
		}
	}
	var wantReg []accounting.RegistrationRecord
	for _, r := range full.Log.Registrations {
		if sampledGUID[r.GUID] {
			wantReg = append(wantReg, r)
		}
	}
	if !reflect.DeepEqual(part.Log.Registrations, wantReg) {
		t.Fatal("registrations differ between sampled and full run")
	}
}

// TestDeterminismSampledM exercises the determinism contract at the M
// tier's per-shard population — a quarter-million-peer world sampled down
// to two region shards — without paying for all twelve shards. This is the
// paper-scale variant of TestDeterminismAcrossWorkers.
func TestDeterminismSampledM(t *testing.T) {
	if testing.Short() {
		t.Skip("M-tier sampled determinism run takes ~a minute")
	}
	run := func(workers int) *Result {
		cfg := MScenario()
		cfg.Workers = workers
		cfg.RegionSample = []geo.NetworkRegion{1, 4}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ref := run(1)
	if len(ref.Log.Downloads) < 50_000 {
		t.Fatalf("sampled M run produced only %d downloads", len(ref.Log.Downloads))
	}
	got := run(4)
	if got.Events != ref.Events {
		t.Fatalf("workers=4 executed %d events, reference %d", got.Events, ref.Events)
	}
	if !bytes.Equal(logBytes(t, got), logBytes(t, ref)) {
		t.Fatal("workers=4 sampled M log differs from the sequential reference")
	}
}
