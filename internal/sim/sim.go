package sim

import (
	"fmt"
	"math/rand"
	"time"

	"netsession/internal/accounting"
	"netsession/internal/content"
	"netsession/internal/geo"
	"netsession/internal/id"
	"netsession/internal/protocol"
	"netsession/internal/selection"
	"netsession/internal/telemetry"
	"netsession/internal/trace"
)

// Sim is one simulation run in progress.
type Sim struct {
	cfg ScenarioConfig
	eng Engine
	rng *rand.Rand
	// faultRng feeds the fault-injection layer only. Keeping it separate
	// from the scenario stream means a disabled fault layer makes zero
	// draws, so base results stay byte-identical.
	faultRng *rand.Rand

	atlas *geo.Atlas
	scape *geo.EdgeScape
	pop   *trace.Population
	cat   *trace.Catalog
	reqs  []trace.Request

	dirs      [geo.NumRegions]*selection.Directory
	collector *accounting.Collector

	peers  []*simPeer
	guidIx map[id.GUID]*simPeer

	metrics   *simMetrics
	wallStart time.Time

	// stats
	p2pAttempted  int
	activeFlows   int
	finishedFlows int
}

// simPeer is the simulator's view of one peer.
type simPeer struct {
	spec   *trace.PeerSpec
	region geo.NetworkRegion
	info   protocol.PeerInfo

	online         bool
	uploadsEnabled bool

	// cache maps completed objects to their shareability expiry.
	cache map[content.ObjectID]int64
	// perObjectUploads counts serving sessions granted per object (§3.9).
	perObjectUploads map[content.ObjectID]int

	serving     map[*dl]bool
	downloading map[*dl]bool
}

// Result is the output of a run: the same log schema the live control plane
// produces, plus the generation artifacts analyses need.
type Result struct {
	Log      *accounting.Log
	Pop      *trace.Population
	Catalog  *trace.Catalog
	Requests []trace.Request
	Atlas    *geo.Atlas
	Scape    *geo.EdgeScape
	// Dirs is the final directory state per region (useful for inspection;
	// most analyses use the cumulative registration log instead).
	Dirs [geo.NumRegions]*selection.Directory
	// Events is how many simulator events executed.
	Events int
	// Telemetry is the final metrics snapshot of the run.
	Telemetry telemetry.Snapshot
}

// Run executes a scenario to completion.
func Run(cfg ScenarioConfig) (*Result, error) {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	faultSeed := cfg.Faults.Seed
	if faultSeed == 0 {
		faultSeed = 1
	}
	s := &Sim{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		faultRng:  rand.New(rand.NewSource(faultSeed)),
		metrics:   newSimMetrics(cfg.Telemetry),
		wallStart: time.Now(),
	}

	s.atlas = geo.GenerateAtlas(cfg.Atlas)
	s.scape = geo.NewEdgeScape(s.atlas)
	var err error
	s.pop, err = trace.GeneratePopulation(s.atlas, s.scape, cfg.NumPeers, cfg.Seed+1)
	if err != nil {
		return nil, fmt.Errorf("sim: population: %w", err)
	}
	catCfg := cfg.Catalog
	catCfg.Seed = cfg.Seed + 2
	s.cat, err = trace.GenerateCatalog(catCfg)
	if err != nil {
		return nil, fmt.Errorf("sim: catalog: %w", err)
	}
	wl := cfg.Workload
	wl.Seed = cfg.Seed + 3
	wl.TotalDownloads = cfg.TotalDownloads
	wl.Days = cfg.Days
	s.reqs, err = trace.GenerateWorkload(s.pop, s.cat, wl)
	if err != nil {
		return nil, fmt.Errorf("sim: workload: %w", err)
	}
	for r := 0; r < geo.NumRegions; r++ {
		s.dirs[r] = selection.NewDirectory(geo.NetworkRegion(r))
	}
	s.collector = accounting.NewCollector(nil)

	s.setupPeers()
	s.seedObjects()
	s.scheduleRequests()
	snapMs := int64(cfg.SnapshotIntervalHours * 3_600_000)
	if snapMs <= 0 {
		snapMs = 24 * 3_600_000
	}
	s.snapshotLoop(snapMs)
	if cfg.DNFailureAtDay > 0 {
		s.eng.At(int64(cfg.DNFailureAtDay)*86_400_000, func() {
			// All DN databases are lost at once; directories repopulate
			// from the peers' soft-state refreshes (§3.8).
			for _, d := range s.dirs {
				d.Clear()
			}
		})
	}

	horizon := int64(cfg.Days) * 86_400_000
	events := s.eng.Run(horizon + 48*3_600_000) // drain stragglers past the month
	s.logSnapshot()                             // final totals

	// Login records come from the shared trace generator so the
	// login-based analyses (Tables 1/3, Figure 12, mobility) see the same
	// population.
	logins := trace.GenerateLogins(s.pop, cfg.Days, cfg.Seed+4)
	log := s.collector.Snapshot()
	log.Logins = logins

	return &Result{
		Log: log, Pop: s.pop, Catalog: s.cat, Requests: s.reqs,
		Atlas: s.atlas, Scape: s.scape, Dirs: s.dirs, Events: events,
		Telemetry: s.metrics.reg.Snapshot(),
	}, nil
}

func (s *Sim) setupPeers() {
	s.peers = make([]*simPeer, len(s.pop.Peers))
	for i, spec := range s.pop.Peers {
		p := &simPeer{
			spec:   spec,
			region: geo.RegionOf(spec.Home),
			info: protocol.PeerInfo{
				GUID:     spec.GUID,
				Addr:     spec.Home.IP.String() + ":7000",
				NAT:      spec.NAT,
				ASN:      uint32(spec.Home.ASN),
				Location: uint32(spec.Home.Location),
			},
			uploadsEnabled:   spec.UploadsEnabledAtInstall,
			cache:            make(map[content.ObjectID]int64),
			perObjectUploads: make(map[content.ObjectID]int),
			serving:          make(map[*dl]bool),
			downloading:      make(map[*dl]bool),
		}
		if s.cfg.UploadEnabledOverride >= 0 {
			p.uploadsEnabled = s.rng.Float64() < s.cfg.UploadEnabledOverride
		}
		s.peers[i] = p
		// Initial presence, the churn cycle, and the soft-state refresh
		// cycle.
		p.online = s.rng.Float64() < s.cfg.SessionOnHours/(s.cfg.SessionOnHours+s.cfg.SessionOffHours)
		s.scheduleChurn(p)
		if s.cfg.RefreshIntervalHours > 0 {
			s.scheduleRefresh(p)
		}
		// Preference toggles at random points in the trace (Table 3).
		for k := 0; k < spec.SettingChanges; k++ {
			at := int64(s.rng.Float64() * float64(s.cfg.Days) * 86_400_000)
			s.eng.At(at, func() { s.togglePeer(p) })
		}
	}
}

// seedObjects plants initial copies of p2p-enabled objects on random
// upload-enabled peers — the "initial seeder" a pure peer-to-peer CDN needs
// (§2.1). The hybrid configuration leaves this at zero: the edge is the
// origin.
func (s *Sim) seedObjects() {
	if s.cfg.SeedCopiesPerObject <= 0 {
		return
	}
	var enabled []*simPeer
	for _, p := range s.peers {
		if p.uploadsEnabled {
			enabled = append(enabled, p)
		}
	}
	if len(enabled) == 0 {
		return
	}
	for _, f := range s.cat.P2PFiles() {
		for k := 0; k < s.cfg.SeedCopiesPerObject; k++ {
			s.completeCache(enabled[s.rng.Intn(len(enabled))], f.Object.ID)
		}
	}
}

func (s *Sim) scheduleChurn(p *simPeer) {
	mean := s.cfg.SessionOffHours
	if p.online {
		mean = s.cfg.SessionOnHours
	}
	d := int64(s.rng.ExpFloat64() * mean * 3_600_000)
	if d < 60_000 {
		d = 60_000
	}
	s.eng.After(d, func() { s.churn(p) })
}

// scheduleRefresh keeps an online peer's directory entries fresh; the live
// client re-announces periodically for the same reason (soft state, §3.8).
func (s *Sim) scheduleRefresh(p *simPeer) {
	jitter := int64(s.rng.Float64() * 600_000)
	s.eng.After(int64(s.cfg.RefreshIntervalHours*3_600_000)+jitter, func() {
		if p.online {
			s.reregisterCache(p)
		}
		s.scheduleRefresh(p)
	})
}

func (s *Sim) churn(p *simPeer) {
	if p.online {
		// Keep the machine on while the user's own downloads run.
		if len(p.downloading) > 0 {
			s.eng.After(30*60_000, func() { s.churn(p) })
			return
		}
		s.setOffline(p)
	} else {
		s.setOnline(p)
	}
	s.scheduleChurn(p)
}

func (s *Sim) setOnline(p *simPeer) {
	if p.online {
		return
	}
	p.online = true
	s.reregisterCache(p)
}

// reregisterCache announces unexpired cached objects after a (re)connect;
// the directory is soft state (§3.8).
func (s *Sim) reregisterCache(p *simPeer) {
	if !p.uploadsEnabled {
		return
	}
	now := s.eng.Now()
	for oid, exp := range p.cache {
		if exp <= now {
			delete(p.cache, oid)
			continue
		}
		s.dirs[p.region].Register(oid, selection.Entry{
			Info: p.info, Rec: p.spec.Home, Complete: true, RegisteredMs: now,
		})
	}
}

func (s *Sim) setOffline(p *simPeer) {
	if !p.online {
		return
	}
	p.online = false
	s.dirs[p.region].DropPeer(p.spec.GUID)
	// Downloads this peer was serving lose one source.
	for d := range p.serving {
		s.detachServer(d, p)
	}
}

// togglePeer flips the upload preference, with the directory consequences.
func (s *Sim) togglePeer(p *simPeer) {
	p.uploadsEnabled = !p.uploadsEnabled
	if !p.uploadsEnabled {
		s.dirs[p.region].DropPeer(p.spec.GUID)
		for d := range p.serving {
			s.detachServer(d, p)
		}
	} else if p.online {
		s.reregisterCache(p)
	}
}

func (s *Sim) scheduleRequests() {
	for i := range s.reqs {
		req := s.reqs[i]
		s.eng.At(req.TimeMs, func() { s.startDownload(req) })
	}
}

// completeCache registers a freshly completed object for sharing.
func (s *Sim) completeCache(p *simPeer, oid content.ObjectID) {
	now := s.eng.Now()
	exp := now + int64(s.cfg.CacheTTLHours*3_600_000)
	_, had := p.cache[oid]
	p.cache[oid] = exp
	if p.uploadsEnabled && p.online {
		s.dirs[p.region].Register(oid, selection.Entry{
			Info: p.info, Rec: p.spec.Home, Complete: true, RegisteredMs: now,
		})
	}
	if !had {
		// New copy in the system: one DN log entry (Figure 5 counts these).
		s.collector.AddRegistration(accounting.RegistrationRecord{
			TimeMs: now, GUID: p.spec.GUID, Object: oid,
		})
		s.eng.At(exp, func() { s.expireCache(p, oid) })
	}
}

func (s *Sim) expireCache(p *simPeer, oid content.ObjectID) {
	if exp, ok := p.cache[oid]; ok && exp <= s.eng.Now() {
		delete(p.cache, oid)
		s.dirs[p.region].Unregister(oid, p.spec.GUID)
	}
}

// mbpsToBytesPerMs converts a link rate.
func mbpsToBytesPerMs(mbps float64) float64 { return mbps * 1e6 / 8 / 1000 }

// bpsToBytesPerMs converts bits/s to bytes/ms.
func bpsToBytesPerMs(bps int64) float64 { return float64(bps) / 8 / 1000 }

func expMs(r *rand.Rand, meanHours float64) int64 {
	return int64(r.ExpFloat64() * meanHours * 3_600_000)
}
