package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"netsession/internal/accounting"
	"netsession/internal/content"
	"netsession/internal/geo"
	"netsession/internal/protocol"
	"netsession/internal/selection"
	"netsession/internal/telemetry"
	"netsession/internal/trace"
)

// Sim is one simulation run in progress: the shared generation artifacts
// plus one independent shard per control-plane network region.
type Sim struct {
	cfg ScenarioConfig

	atlas *geo.Atlas
	scape *geo.EdgeScape
	pop   *trace.Population
	cat   *trace.Catalog
	reqs  []trace.Request

	// Object interning: catalog objects are identified by a 32-byte hash,
	// but per-peer state at million-peer scale cannot afford map keys of
	// that size. Objects are assigned dense uint32 indexes in catalog file
	// order (deterministic); objID is the reverse table. Shared read-only
	// across shards.
	objIx map[content.ObjectID]uint32
	objID []content.ObjectID

	shards []*shard
	// active is the subset of shards actually simulated: all of them
	// normally, only the sampled regions under cfg.RegionSample.
	active []*shard
	// peers holds every simulated peer, indexed like pop.Peers; each peer
	// is mutated only by its owning region's shard. Entries for peers homed
	// in unsampled regions are nil.
	peers []*simPeer

	metrics   *simMetrics
	wallStart time.Time
}

// simPeer is the simulator's view of one peer. Every collection hanging off
// it is a small ordered slice rather than a map: membership tests stay
// O(per-peer fan-out) — a handful of entries in practice — while iteration
// order, and with it event scheduling order, stays deterministic. At the
// XXL tier (1M peers) the two per-peer maps this replaced cost several
// hundred bytes each even when nearly empty; the slices cost nothing until
// a peer actually caches or serves something.
type simPeer struct {
	spec   *trace.PeerSpec
	region geo.NetworkRegion
	// ix is the peer's index within its shard's peers slice; event args
	// carry it instead of a closed-over pointer.
	ix   uint32
	info protocol.PeerInfo

	online         bool
	uploadsEnabled bool

	// cache holds completed objects (interned index) and their shareability
	// expiry, in completion order.
	cache []cacheEntry
	// uploads counts serving sessions granted per object (§3.9).
	uploads []uploadEntry

	serving     []*dl
	downloading []*dl
}

// cacheEntry is one shareable cached object.
type cacheEntry struct {
	obj uint32 // interned object index
	exp int64  // shareability expiry, virtual ms
}

// uploadEntry counts serving sessions granted for one object.
type uploadEntry struct {
	obj uint32
	n   int32
}

// cacheIndex returns the position of obj in the peer's cache, or -1.
func (p *simPeer) cacheIndex(obj uint32) int {
	for i := range p.cache {
		if p.cache[i].obj == obj {
			return i
		}
	}
	return -1
}

// uploadsOf returns the serving sessions granted so far for obj.
func (p *simPeer) uploadsOf(obj uint32) int {
	for i := range p.uploads {
		if p.uploads[i].obj == obj {
			return int(p.uploads[i].n)
		}
	}
	return 0
}

// incUploads bumps the per-object serving-session counter.
func (p *simPeer) incUploads(obj uint32) {
	for i := range p.uploads {
		if p.uploads[i].obj == obj {
			p.uploads[i].n++
			return
		}
	}
	p.uploads = append(p.uploads, uploadEntry{obj: obj, n: 1})
}

func (p *simPeer) isServing(d *dl) bool {
	for _, x := range p.serving {
		if x == d {
			return true
		}
	}
	return false
}

func (p *simPeer) removeServing(d *dl) {
	for i, x := range p.serving {
		if x == d {
			p.serving = append(p.serving[:i], p.serving[i+1:]...)
			return
		}
	}
}

func (p *simPeer) removeDownloading(d *dl) {
	for i, x := range p.downloading {
		if x == d {
			p.downloading = append(p.downloading[:i], p.downloading[i+1:]...)
			return
		}
	}
}

// Result is the output of a run: the same log schema the live control plane
// produces, plus the generation artifacts analyses need.
type Result struct {
	Log      *accounting.Log
	Pop      *trace.Population
	Catalog  *trace.Catalog
	Requests []trace.Request
	Atlas    *geo.Atlas
	Scape    *geo.EdgeScape
	// Dirs is the final directory state per region (useful for inspection;
	// most analyses use the cumulative registration log instead).
	Dirs [geo.NumRegions]*selection.Directory
	// Events is how many simulator events executed across all shards.
	Events int
	// Telemetry is the final metrics snapshot of the run.
	Telemetry telemetry.Snapshot
}

// Run executes a scenario to completion.
//
// The simulation is sharded by network region: every shard owns its region's
// peers, directory, event queue and RNG streams (derived deterministically
// from (seed, region)), and shards run concurrently on cfg.Workers workers.
// Because regions share no mutable state and the per-shard logs are merged
// by (timestamp, region), the result is byte-identical for any worker count
// — workers=1 is a plain sequential loop and the reference ordering.
func Run(cfg ScenarioConfig) (*Result, error) {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	} else {
		// Shards log progress concurrently; serialize the caller's sink.
		var logMu sync.Mutex
		inner := cfg.Logf
		cfg.Logf = func(format string, args ...any) {
			logMu.Lock()
			defer logMu.Unlock()
			inner(format, args...)
		}
	}
	s := &Sim{
		cfg:       cfg,
		metrics:   newSimMetrics(cfg.Telemetry),
		wallStart: time.Now(),
	}

	s.atlas = geo.GenerateAtlas(cfg.Atlas)
	s.scape = geo.NewEdgeScape(s.atlas)
	var err error
	s.pop, err = trace.GeneratePopulation(s.atlas, s.scape, cfg.NumPeers, cfg.Seed+1)
	if err != nil {
		return nil, fmt.Errorf("sim: population: %w", err)
	}
	catCfg := cfg.Catalog
	catCfg.Seed = cfg.Seed + 2
	s.cat, err = trace.GenerateCatalog(catCfg)
	if err != nil {
		return nil, fmt.Errorf("sim: catalog: %w", err)
	}
	// Intern object IDs in catalog file order (deterministic for a seed).
	s.objIx = make(map[content.ObjectID]uint32, len(s.cat.Files))
	s.objID = make([]content.ObjectID, 0, len(s.cat.Files))
	for _, f := range s.cat.Files {
		if _, ok := s.objIx[f.Object.ID]; ok {
			continue
		}
		s.objIx[f.Object.ID] = uint32(len(s.objID))
		s.objID = append(s.objID, f.Object.ID)
	}
	wl := cfg.Workload
	wl.Seed = cfg.Seed + 3
	wl.TotalDownloads = cfg.TotalDownloads
	wl.Days = cfg.Days
	s.reqs, err = trace.GenerateWorkload(s.pop, s.cat, wl)
	if err != nil {
		return nil, fmt.Errorf("sim: workload: %w", err)
	}

	// Build shards and partition peers in global order, so each shard's
	// peer list (and with it every per-peer draw) is deterministic.
	var sampled [geo.NumRegions]bool
	if len(cfg.RegionSample) == 0 {
		for r := range sampled {
			sampled[r] = true
		}
	} else {
		for _, r := range cfg.RegionSample {
			if int(r) < 0 || int(r) >= geo.NumRegions {
				return nil, fmt.Errorf("sim: RegionSample region %d out of range", r)
			}
			sampled[r] = true
		}
	}
	s.shards = make([]*shard, geo.NumRegions)
	for r := 0; r < geo.NumRegions; r++ {
		s.shards[r] = newShard(&s.cfg, geo.NetworkRegion(r), s.metrics, s.cfg.Logf)
		if sampled[r] {
			s.active = append(s.active, s.shards[r])
		}
	}
	s.peers = make([]*simPeer, len(s.pop.Peers))
	for i, spec := range s.pop.Peers {
		region := geo.RegionOf(spec.Home)
		if !sampled[region] {
			continue
		}
		s.peers[i] = s.shards[region].addPeer(spec)
	}
	for _, sh := range s.active {
		sh.allPeers = s.peers
		sh.objIx = s.objIx
		sh.objID = s.objID
		sh.setupPeers()
	}
	s.seedObjects()

	// Partition the time-sorted request stream; per-shard order is the
	// global order restricted to the region.
	for i := range s.reqs {
		req := s.reqs[i]
		p := s.peers[req.PeerIndex]
		if p == nil {
			continue // requester homed in an unsampled region
		}
		s.shards[p.region].reqs = append(s.shards[p.region].reqs, req)
	}

	snapMs := int64(cfg.SnapshotIntervalHours * 3_600_000)
	if snapMs <= 0 {
		snapMs = 24 * 3_600_000
	}
	for _, sh := range s.active {
		sh.prepareRun(snapMs)
	}

	horizon := int64(cfg.Days) * 86_400_000
	until := horizon + 48*3_600_000 // drain stragglers past the month
	events := s.runShards(until)
	s.finalSnapshot(until, events)

	// Login records come from the shared trace generator so the
	// login-based analyses (Tables 1/3, Figure 12, mobility) see the same
	// population.
	logins := trace.GenerateLogins(s.pop, cfg.Days, cfg.Seed+4)
	log := s.mergeLogs()
	log.Logins = logins

	res := &Result{
		Log: log, Pop: s.pop, Catalog: s.cat, Requests: s.reqs,
		Atlas: s.atlas, Scape: s.scape, Events: events,
		Telemetry: s.metrics.reg.Snapshot(),
	}
	for r, sh := range s.shards {
		res.Dirs[r] = sh.dir
	}
	return res, nil
}

// workerCount resolves cfg.Workers: non-positive means one worker per
// available CPU, and there is never a reason to exceed the shard count.
func (s *Sim) workerCount() int {
	w := s.cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(s.shards) {
		w = len(s.shards)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// runShards executes every shard to the horizon. workers=1 runs them
// sequentially in region order on the calling goroutine (the reference
// mode); workers>1 runs them on a bounded pool. Shards are causally
// independent, so both modes produce identical per-shard results; the
// merge-wait metric records how long the pool idled on its slowest shard
// (shard imbalance).
func (s *Sim) runShards(untilMs int64) int {
	workers := s.workerCount()
	if workers == 1 {
		total := 0
		for _, sh := range s.active {
			total += sh.run(untilMs)
		}
		return total
	}

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		total     int
		firstDone time.Time
		lastDone  time.Time
		next      = make(chan *shard, len(s.active))
	)
	for _, sh := range s.active {
		next <- sh
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range next {
				n := sh.run(untilMs)
				done := time.Now()
				mu.Lock()
				total += n
				if firstDone.IsZero() {
					firstDone = done
				}
				lastDone = done
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	s.metrics.mergeWait.Set(float64(lastDone.Sub(firstDone).Milliseconds()))
	return total
}

// seedObjects plants initial copies of p2p-enabled objects on random
// upload-enabled peers — the "initial seeder" a pure peer-to-peer CDN needs
// (§2.1). The hybrid configuration leaves this at zero: the edge is the
// origin. The plan is drawn from a dedicated setup stream over the global
// peer list, then executed on each chosen peer's shard, so it is identical
// for every worker count.
func (s *Sim) seedObjects() {
	if s.cfg.SeedCopiesPerObject <= 0 {
		return
	}
	rng := rand.New(rand.NewSource(s.cfg.Seed + 5))
	var enabled []*simPeer
	for _, p := range s.peers {
		// Under RegionSample unsampled peers are nil; the seed plan then
		// differs from a full run's, so sampled runs are only
		// full-run-comparable with SeedCopiesPerObject == 0 (the default).
		if p != nil && p.uploadsEnabled {
			enabled = append(enabled, p)
		}
	}
	if len(enabled) == 0 {
		return
	}
	for _, f := range s.cat.P2PFiles() {
		for k := 0; k < s.cfg.SeedCopiesPerObject; k++ {
			p := enabled[rng.Intn(len(enabled))]
			s.shards[p.region].completeCache(p, s.objIx[f.Object.ID])
		}
	}
}

// mergeKey orders merged records: timestamp first, then region, then the
// record's position within its shard stream. A pure function of the shard
// states, independent of worker count and scheduling.
type mergeKey struct {
	at     int64
	region int32
	seq    int32
}

func (a mergeKey) less(b mergeKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.region != b.region {
		return a.region < b.region
	}
	return a.seq < b.seq
}

// mergeLogs interleaves the per-shard record streams into one global log.
// Each shard's stream is time-ordered by construction.
func (s *Sim) mergeLogs() *accounting.Log {
	nd, nr := 0, 0
	for _, sh := range s.shards {
		nd += len(sh.log.downloads)
		nr += len(sh.log.regs)
	}
	log := &accounting.Log{
		Downloads:     make([]accounting.DownloadRecord, 0, nd),
		Registrations: make([]accounting.RegistrationRecord, 0, nr),
	}

	keys := make([]mergeKey, 0, nd)
	for r, sh := range s.shards {
		for i := range sh.log.downloads {
			keys = append(keys, mergeKey{sh.log.downloads[i].at, int32(r), int32(i)})
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	for _, k := range keys {
		sh := s.shards[k.region]
		sd := &sh.log.downloads[k.seq]
		rec := sd.rec
		if sd.contribLen > 0 {
			// Per-peer attributions live in the shard's contribution arena;
			// the record gets a capacity-clamped view, not a copy.
			end := sd.contribOff + sd.contribLen
			rec.FromPeers = sh.log.contribs[sd.contribOff:end:end]
		}
		log.Downloads = append(log.Downloads, rec)
	}

	keys = keys[:0]
	for r, sh := range s.shards {
		for i := range sh.log.regs {
			keys = append(keys, mergeKey{sh.log.regs[i].at, int32(r), int32(i)})
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	for _, k := range keys {
		log.Registrations = append(log.Registrations, s.shards[k.region].log.regs[k.seq].rec)
	}
	return log
}

// mbpsToBytesPerMs converts a link rate.
func mbpsToBytesPerMs(mbps float64) float64 { return mbps * 1e6 / 8 / 1000 }

// bpsToBytesPerMs converts bits/s to bytes/ms.
func bpsToBytesPerMs(bps int64) float64 { return float64(bps) / 8 / 1000 }

func expMs(r *rand.Rand, meanHours float64) int64 {
	return int64(r.ExpFloat64() * meanHours * 3_600_000)
}
