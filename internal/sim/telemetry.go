package sim

import (
	"time"

	"netsession/internal/geo"
	"netsession/internal/protocol"
	"netsession/internal/telemetry"
)

// simMetrics pre-resolves the simulator's metric handles. Counters are
// atomic and shared across shards (their final values are order-independent
// sums); gauges are written only by per-shard snapshots for per-region
// series, or by the coordinator for run-wide totals.
type simMetrics struct {
	reg *telemetry.Registry

	started        *telemetry.Counter
	byOutcome      [protocol.OutcomeAborted + 1]*telemetry.Counter
	activeFlows    *telemetry.Gauge
	faultsInjected *telemetry.Counter

	virtualMs    *telemetry.Gauge
	events       *telemetry.Gauge
	eventsPerSec *telemetry.Gauge
	virtWallX    *telemetry.Gauge

	// shardEvents counts events executed per region shard; comparing the
	// per-region series on /metrics makes shard imbalance visible.
	shardEvents [geo.NumRegions]*telemetry.Counter
	// mergeWait is how long (wall ms) the worker pool idled between the
	// first shard finishing and the slowest one — the cost of imbalance.
	mergeWait *telemetry.Gauge
}

func newSimMetrics(reg *telemetry.Registry) *simMetrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	m := &simMetrics{
		reg: reg,
		started: reg.Counter("sim_downloads_started_total",
			"workload requests started", nil),
		activeFlows: reg.Gauge("sim_active_flows",
			"downloads currently in flight", nil),
		faultsInjected: reg.Counter("sim_faults_injected_total",
			"serving peers killed mid-download by the fault layer", nil),
		virtualMs: reg.Gauge("sim_virtual_ms",
			"virtual clock position in milliseconds", nil),
		events: reg.Gauge("sim_events_executed",
			"cumulative simulator events executed", nil),
		eventsPerSec: reg.Gauge("sim_events_per_sec",
			"simulator event throughput (events per wall-clock second)", nil),
		virtWallX: reg.Gauge("sim_virtual_wall_ratio",
			"virtual seconds simulated per wall-clock second", nil),
		mergeWait: reg.Gauge("sim_merge_wait_ms",
			"wall-clock ms between the first and last shard finishing (shard imbalance)", nil),
	}
	for o := protocol.OutcomeCompleted; o <= protocol.OutcomeAborted; o++ {
		m.byOutcome[o] = reg.Counter("sim_downloads_finished_total",
			"finished downloads, by outcome", telemetry.Labels{"outcome": o.String()})
	}
	for r := 0; r < geo.NumRegions; r++ {
		m.shardEvents[r] = reg.Counter("sim_shard_events_total",
			"simulator events executed, by region shard",
			telemetry.Labels{"region": geo.NetworkRegion(r).String()})
	}
	return m
}

// snapshotLoop emits a per-region progress line every intervalMs of virtual
// time and keeps the region's event counter fresh. It reschedules itself
// until the engine's horizon cuts it off; the interval rides in the event
// argument so no closure is needed.
func (sh *shard) snapshotLoop(intervalMs int64) {
	sh.eng.After(intervalMs, sh.onSnapshot, uint64(intervalMs))
}

func (sh *shard) handleSnapshot(intervalMs uint64) {
	sh.logSnapshot()
	sh.snapshotLoop(int64(intervalMs))
}

// logSnapshot publishes the shard's own progress: one text line and the
// per-region event counter. Lines from parallel shards interleave in
// wall-clock order (they are progress diagnostics); the record logs the
// run returns are merged deterministically instead.
func (sh *shard) logSnapshot() {
	events := sh.eng.Executed()
	sh.metrics.shardEvents[sh.region].Add(int64(events - sh.lastEvents))
	sh.lastEvents = events
	sh.logf("sim region=%s t=%.2fd events=%d flows=%d finished=%d",
		sh.region, float64(sh.eng.Now())/86_400_000, events, sh.activeFlows, sh.finishedFlows)
}

// finalSnapshot publishes run-wide totals once every shard has finished.
func (s *Sim) finalSnapshot(untilMs int64, events int) {
	wall := time.Since(s.wallStart).Seconds()
	if wall <= 0 {
		wall = 1e-9
	}
	eps := float64(events) / wall
	virtSec := float64(untilMs) / 1000
	ratio := virtSec / wall
	active, finished := 0, 0
	for _, sh := range s.shards {
		active += sh.activeFlows
		finished += sh.finishedFlows
	}
	s.metrics.virtualMs.Set(float64(untilMs))
	s.metrics.events.Set(float64(events))
	s.metrics.eventsPerSec.Set(eps)
	s.metrics.virtWallX.Set(ratio)
	s.metrics.activeFlows.Set(float64(active))
	s.cfg.Logf("sim t=%.2fd events=%d events/sec=%.0f virt/wall=%.0fx flows=%d finished=%d workers=%d",
		float64(untilMs)/86_400_000, events, eps, ratio, active, finished, s.workerCount())
}
