package sim

import (
	"time"

	"netsession/internal/protocol"
	"netsession/internal/telemetry"
)

// simMetrics pre-resolves the simulator's metric handles. The engine is
// single-goroutine, so these are cheap even inside the event loop.
type simMetrics struct {
	reg *telemetry.Registry

	started        *telemetry.Counter
	byOutcome      [protocol.OutcomeAborted + 1]*telemetry.Counter
	activeFlows    *telemetry.Gauge
	faultsInjected *telemetry.Counter

	virtualMs    *telemetry.Gauge
	events       *telemetry.Gauge
	eventsPerSec *telemetry.Gauge
	virtWallX    *telemetry.Gauge
}

func newSimMetrics(reg *telemetry.Registry) *simMetrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	m := &simMetrics{
		reg: reg,
		started: reg.Counter("sim_downloads_started_total",
			"workload requests started", nil),
		activeFlows: reg.Gauge("sim_active_flows",
			"downloads currently in flight", nil),
		faultsInjected: reg.Counter("sim_faults_injected_total",
			"serving peers killed mid-download by the fault layer", nil),
		virtualMs: reg.Gauge("sim_virtual_ms",
			"virtual clock position in milliseconds", nil),
		events: reg.Gauge("sim_events_executed",
			"cumulative simulator events executed", nil),
		eventsPerSec: reg.Gauge("sim_events_per_sec",
			"simulator event throughput (events per wall-clock second)", nil),
		virtWallX: reg.Gauge("sim_virtual_wall_ratio",
			"virtual seconds simulated per wall-clock second", nil),
	}
	for o := protocol.OutcomeCompleted; o <= protocol.OutcomeAborted; o++ {
		m.byOutcome[o] = reg.Counter("sim_downloads_finished_total",
			"finished downloads, by outcome", telemetry.Labels{"outcome": o.String()})
	}
	return m
}

// snapshotLoop emits a progress line every intervalMs of virtual time: the
// virtual clock, event throughput, the virtual-vs-wall speedup, and flow
// counts. It reschedules itself until the engine's horizon cuts it off.
func (s *Sim) snapshotLoop(intervalMs int64) {
	s.eng.After(intervalMs, func() {
		s.logSnapshot()
		s.snapshotLoop(intervalMs)
	})
}

func (s *Sim) logSnapshot() {
	wall := time.Since(s.wallStart).Seconds()
	if wall <= 0 {
		wall = 1e-9
	}
	events := s.eng.Executed()
	eps := float64(events) / wall
	virtSec := float64(s.eng.Now()) / 1000
	ratio := virtSec / wall
	s.metrics.virtualMs.Set(float64(s.eng.Now()))
	s.metrics.events.Set(float64(events))
	s.metrics.eventsPerSec.Set(eps)
	s.metrics.virtWallX.Set(ratio)
	s.cfg.Logf("sim t=%.2fd events=%d events/sec=%.0f virt/wall=%.0fx flows=%d finished=%d",
		float64(s.eng.Now())/86_400_000, events, eps, ratio, s.activeFlows, s.finishedFlows)
}
