package sim

import (
	"netsession/internal/accounting"
	"netsession/internal/content"
	"netsession/internal/core"
	"netsession/internal/id"
	"netsession/internal/protocol"
	"netsession/internal/selection"
	"netsession/internal/trace"
)

// dl is one in-progress simulated download, modelled as a fluid flow.
type dl struct {
	req  trace.Request
	peer *simPeer
	obj  *content.Object

	startMs     int64
	lastAccrual int64
	total       float64
	bytesInfra  float64
	servers     []*srcLink

	peersReturned int
	p2p           bool

	// Outcome pre-draws.
	abortAtMs  int64 // -1: never
	failOther  bool
	failSystem bool

	epoch     uint64 // invalidates stale completion events
	requeries int
	finished  bool
}

type srcLink struct {
	server *simPeer
	bytes  float64
}

func (d *dl) bytesPeers() float64 {
	t := 0.0
	for _, l := range d.servers {
		t += l.bytes
	}
	return t
}

func (d *dl) done() float64 { return d.bytesInfra + d.bytesPeers() }

// rates returns the current fluid allocation in bytes/ms: the edge share
// and the per-server shares, jointly capped by the downloader's downlink.
// The arithmetic lives in internal/core; this assembles the offers.
func (s *Sim) rates(d *dl) (edge float64, per []float64, total float64) {
	if s.cfg.BackstopEnabled {
		if len(d.servers) == 0 {
			// No peers serving: the DLM behaves like a plain multi-
			// connection download manager against the edge.
			edge = mbpsToBytesPerMs(s.cfg.EdgeOnlyMbps)
		} else {
			edge = mbpsToBytesPerMs(s.cfg.EdgePerConnMbps)
		}
	}
	offers := make([]float64, len(d.servers))
	for i, l := range d.servers {
		offers[i] = core.FairShareOffer(
			bpsToBytesPerMs(l.server.spec.UpBps), len(l.server.serving))
	}
	a := core.Allocate(edge, offers, bpsToBytesPerMs(d.peer.spec.DownBps))
	return a.Edge, a.PerSource, a.Total
}

// accrue advances a download's byte counters to virtual now at the current
// rates. Callers must accrue every affected download BEFORE any mutation
// that changes rates.
func (s *Sim) accrue(d *dl) {
	now := s.eng.Now()
	dt := float64(now - d.lastAccrual)
	d.lastAccrual = now
	if dt <= 0 || d.finished {
		return
	}
	edge, per, _ := s.rates(d)
	dEdge := edge * dt
	dPer := make([]float64, len(per))
	sum := dEdge
	for i := range per {
		dPer[i] = per[i] * dt
		sum += dPer[i]
	}
	if sum <= 0 {
		return
	}
	// Clamp overshoot proportionally (completion events fire exactly on
	// time; only floating-point error and late events land here).
	if remaining := d.total - d.done(); sum > remaining {
		f := remaining / sum
		dEdge *= f
		for i := range dPer {
			dPer[i] *= f
		}
	}
	d.bytesInfra += dEdge
	for i := range dPer {
		d.servers[i].bytes += dPer[i]
	}
}

// affectedBy returns all downloads whose rates depend on any of the given
// peers' serving sets.
func (s *Sim) affectedBy(peers ...*simPeer) map[*dl]bool {
	out := make(map[*dl]bool)
	for _, p := range peers {
		for d := range p.serving {
			out[d] = true
		}
	}
	return out
}

// accrueAll accrues a set of downloads.
func (s *Sim) accrueAll(set map[*dl]bool) {
	for d := range set {
		s.accrue(d)
	}
}

// reschedule recomputes the completion event for each download in the set.
func (s *Sim) reschedule(set map[*dl]bool) {
	for d := range set {
		s.scheduleCompletion(d)
	}
}

func (s *Sim) scheduleCompletion(d *dl) {
	if d.finished {
		return
	}
	d.epoch++
	epoch := d.epoch
	_, _, rate := s.rates(d)
	if rate <= 0 {
		// Stalled (pure-p2p mode with no sources): retry peer discovery
		// shortly; the abort clock may fire first.
		s.eng.After(60_000, func() {
			if !d.finished && d.epoch == epoch {
				s.refreshServers(d)
			}
		})
		return
	}
	remainMs := int64((d.total-d.done())/rate) + 1
	s.eng.After(remainMs, func() {
		if d.finished || d.epoch != epoch {
			return
		}
		s.accrue(d)
		if d.done() >= d.total-1 {
			s.finishDownload(d, protocol.OutcomeCompleted)
		} else {
			s.scheduleCompletion(d)
		}
	})
}

// startDownload handles one workload request.
func (s *Sim) startDownload(req trace.Request) {
	p := s.peers[req.PeerIndex]
	// The user is at the machine: force presence.
	s.setOnline(p)

	obj := req.File.Object
	d := &dl{
		req: req, peer: p, obj: obj,
		startMs: s.eng.Now(), lastAccrual: s.eng.Now(),
		total: float64(obj.Size),
		p2p:   obj.P2PEnabled,
	}
	// Outcome pre-draws (§5.2).
	d.abortAtMs = -1
	if s.rng.Float64() < s.cfg.ImmediateAbortProb {
		d.abortAtMs = d.startMs + int64(s.rng.Float64()*60_000)
	} else if s.cfg.AbortRatePerHour > 0 {
		d.abortAtMs = d.startMs + expMs(s.rng, 1/s.cfg.AbortRatePerHour)
	}
	d.failOther = s.rng.Float64() < s.cfg.FailOtherProb
	sysProb := s.cfg.FailSystemInfra
	if d.p2p {
		sysProb = s.cfg.FailSystemP2P
	}
	d.failSystem = s.rng.Float64() < sysProb

	p.downloading[d] = true
	s.metrics.started.Inc()
	s.activeFlows++
	s.metrics.activeFlows.Set(float64(s.activeFlows))
	if d.p2p {
		s.p2pAttempted++
		s.attachInitialServers(d)
		s.scheduleRequery(d)
	}
	if d.abortAtMs >= 0 {
		at := d.abortAtMs
		s.eng.At(at, func() {
			if !d.finished {
				s.accrue(d)
				s.finishDownload(d, protocol.OutcomeAborted)
			}
		})
	}
	s.scheduleCompletion(d)
}

// attachInitialServers queries the (region-local) directory and connects up
// to MaxServersPerDownload compatible peers.
func (s *Sim) attachInitialServers(d *dl) {
	dir := s.dirs[d.peer.region]
	cands := dir.Select(s.cfg.Policy, selection.Query{
		Object:        d.obj.ID,
		Requester:     d.peer.spec.Home,
		RequesterGUID: d.peer.spec.GUID,
		RequesterNAT:  d.peer.spec.NAT,
		NowMs:         s.eng.Now(),
		Rand:          s.rng,
	})
	d.peersReturned = len(cands)
	s.connectCandidates(d, cands)
}

// scheduleRequery keeps long-running swarms fed: "if connections to some of
// these peers cannot be established, additional queries are issued until a
// sufficient number of peer connections succeed" (§3.7). Fresh copies that
// registered since the first query also join this way.
func (s *Sim) scheduleRequery(d *dl) {
	// Requeries are capped: each costs directory work and rate
	// recomputation across the swarm, and in practice a download that has
	// not found peers after a handful of attempts will not.
	if d.requeries >= 5 {
		return
	}
	d.requeries++
	s.eng.After(10*60_000, func() {
		if d.finished {
			return
		}
		if len(d.servers) < s.cfg.MaxServersPerDownload/4 {
			s.attachInitialServersKeepCount(d)
		}
		s.scheduleRequery(d)
	})
}

// refreshServers re-queries when a download has no sources (pure-p2p mode).
func (s *Sim) refreshServers(d *dl) {
	if d.finished || len(d.servers) > 0 {
		return
	}
	s.attachInitialServersKeepCount(d)
	s.scheduleCompletion(d)
}

func (s *Sim) attachInitialServersKeepCount(d *dl) {
	// Like attachInitialServers but preserves the Figure 6 "initially
	// returned" count from the first query.
	dir := s.dirs[d.peer.region]
	cands := dir.Select(s.cfg.Policy, selection.Query{
		Object:        d.obj.ID,
		Requester:     d.peer.spec.Home,
		RequesterGUID: d.peer.spec.GUID,
		RequesterNAT:  d.peer.spec.NAT,
		NowMs:         s.eng.Now(),
		Rand:          s.rng,
	})
	s.connectCandidates(d, cands)
}

func (s *Sim) connectCandidates(d *dl, cands []protocol.PeerInfo) {
	attached := make([]*simPeer, 0, s.cfg.MaxServersPerDownload)
	for _, c := range cands {
		if len(d.servers)+len(attached) >= s.cfg.MaxServersPerDownload {
			break
		}
		sp := s.peerByGUID(c.GUID)
		if sp == nil || !sp.online || !sp.uploadsEnabled || sp == d.peer {
			continue
		}
		if sp.serving[d] {
			continue // already serving this download
		}
		if s.cfg.MaxUploadConnsPerPeer > 0 && len(sp.serving) >= s.cfg.MaxUploadConnsPerPeer {
			continue // the peer's global upload-connection limit (§3.4)
		}
		if s.rng.Float64() < s.cfg.ConnFailureProb {
			continue // "if connections to some of these peers cannot be established..."
		}
		if s.cfg.PerObjectUploadCap > 0 && sp.perObjectUploads[d.obj.ID] >= s.cfg.PerObjectUploadCap {
			// Upload cap reached: the peer stops serving this object
			// (§3.9) and leaves the directory for it.
			s.dirs[sp.region].Unregister(d.obj.ID, sp.spec.GUID)
			continue
		}
		attached = append(attached, sp)
	}
	if len(attached) == 0 {
		return
	}
	// Rates of everything these servers already serve will change.
	affected := s.affectedBy(attached...)
	affected[d] = true
	s.accrueAll(affected)
	for _, sp := range attached {
		sp.serving[d] = true
		sp.perObjectUploads[d.obj.ID]++
		d.servers = append(d.servers, &srcLink{server: sp})
		s.maybeKillServer(d, sp)
	}
	s.reschedule(affected)
}

// maybeKillServer is the simulator's fault layer: with probability
// ServerFailProb a freshly attached serving peer is scheduled to crash at a
// uniform point in the next ten minutes, forcing the download onto its
// remaining peers and the edge backstop (§3.3). All draws come from the
// dedicated fault RNG so the base scenario stream is untouched.
func (s *Sim) maybeKillServer(d *dl, sp *simPeer) {
	if !s.cfg.Faults.Enabled() {
		return
	}
	if s.faultRng.Float64() >= s.cfg.Faults.ServerFailProb {
		return
	}
	delay := int64(s.faultRng.Float64()*600_000) + 1
	s.eng.After(delay, func() {
		if d.finished || !sp.serving[d] || !sp.online {
			return
		}
		s.metrics.faultsInjected.Inc()
		s.setOffline(sp)
	})
}

// detachServer removes a serving peer from a download (server churn).
func (s *Sim) detachServer(d *dl, sp *simPeer) {
	if d.finished {
		delete(sp.serving, d)
		return
	}
	affected := s.affectedBy(sp)
	s.accrueAll(affected)
	delete(sp.serving, d)
	for i, l := range d.servers {
		if l.server == sp {
			d.servers = append(d.servers[:i], d.servers[i+1:]...)
			break
		}
	}
	s.reschedule(affected)
}

// finishDownload moves a download to a terminal state, emits the log
// record, and releases its server capacity.
func (s *Sim) finishDownload(d *dl, outcome protocol.Outcome) {
	if d.finished {
		return
	}
	// Retrofit rare failures onto would-be completions: a constant
	// per-download probability, truncating the transfer at a uniform
	// point (§5.2's "other causes (e.g., the user's disk is full)").
	endMs := s.eng.Now()
	if outcome == protocol.OutcomeCompleted && (d.failOther || d.failSystem) {
		u := 0.1 + 0.9*s.rng.Float64()
		endMs = d.startMs + int64(u*float64(endMs-d.startMs))
		d.bytesInfra *= u
		for _, l := range d.servers {
			l.bytes *= u
		}
		if d.failSystem {
			outcome = protocol.OutcomeFailedSystem
		} else {
			outcome = protocol.OutcomeFailedOther
		}
	}
	d.finished = true
	d.epoch++

	// Free server capacity; remaining downloads on those servers speed up.
	servers := make([]*simPeer, 0, len(d.servers))
	for _, l := range d.servers {
		servers = append(servers, l.server)
	}
	affected := s.affectedBy(servers...)
	delete(affected, d)
	s.accrueAll(affected)
	for _, sp := range servers {
		delete(sp.serving, d)
	}
	s.reschedule(affected)
	delete(d.peer.downloading, d)
	s.activeFlows--
	s.finishedFlows++
	s.metrics.activeFlows.Set(float64(s.activeFlows))
	s.metrics.byOutcome[outcome].Inc()

	rec := accounting.DownloadRecord{
		GUID:          d.peer.spec.GUID,
		IP:            d.peer.spec.Home.IP,
		Object:        d.obj.ID,
		URLHash:       d.obj.URL,
		CP:            d.obj.CP,
		Size:          d.obj.Size,
		P2PEnabled:    d.obj.P2PEnabled,
		StartMs:       d.startMs,
		EndMs:         endMs,
		BytesInfra:    int64(d.bytesInfra),
		BytesPeers:    int64(d.bytesPeers()),
		Outcome:       outcome,
		PeersReturned: d.peersReturned,
	}
	for _, l := range d.servers {
		if l.bytes <= 0 {
			continue
		}
		rec.FromPeers = append(rec.FromPeers, accounting.PeerContribution{
			GUID: l.server.spec.GUID, IP: l.server.spec.Home.IP, Bytes: int64(l.bytes),
		})
	}
	s.collector.AddDownload(rec)

	if outcome == protocol.OutcomeCompleted {
		s.completeCache(d.peer, d.obj.ID)
	}
}

// peerByGUID finds the simPeer for a GUID. Directories store GUIDs; the sim
// keeps a lazily built index.
func (s *Sim) peerByGUID(g id.GUID) *simPeer {
	if s.guidIx == nil {
		s.guidIx = make(map[id.GUID]*simPeer, len(s.peers))
		for _, p := range s.peers {
			s.guidIx[p.spec.GUID] = p
		}
	}
	return s.guidIx[g]
}
