package sim

import (
	"netsession/internal/accounting"
	"netsession/internal/content"
	"netsession/internal/core"
	"netsession/internal/protocol"
	"netsession/internal/selection"
	"netsession/internal/trace"
)

// dl is one in-progress simulated download, modelled as a fluid flow.
type dl struct {
	req  trace.Request
	peer *simPeer
	obj  *content.Object

	// slot is the download's index in the shard's dls table; events carry
	// it (packed with an epoch) instead of closing over the dl. objIx is
	// the interned object index.
	slot  uint32
	objIx uint32

	startMs     int64
	lastAccrual int64
	total       float64
	bytesInfra  float64
	servers     []srcLink

	peersReturned int
	p2p           bool

	// stream, when non-nil, is the fluid playback model of a deadline-driven
	// streaming request; advanced alongside every byte accrual.
	stream *streamState

	// Outcome pre-draws.
	abortAtMs  int64 // -1: never
	failOther  bool
	failSystem bool

	epoch     uint32 // invalidates stale completion events
	requeries int
	finished  bool

	// mark is the shard's affected-set epoch stamp; a dl whose mark equals
	// the shard's current generation is already in the scratch set. This
	// replaces the map[*dl]bool sets the inner loop used to allocate.
	mark uint64
}

type srcLink struct {
	server *simPeer
	bytes  float64
}

func (d *dl) bytesPeers() float64 {
	t := 0.0
	for i := range d.servers {
		t += d.servers[i].bytes
	}
	return t
}

func (d *dl) done() float64 { return d.bytesInfra + d.bytesPeers() }

// removeServer splices one serving peer out of the download's source list,
// preserving order.
func (d *dl) removeServer(sp *simPeer) {
	for i := range d.servers {
		if d.servers[i].server == sp {
			d.servers = append(d.servers[:i], d.servers[i+1:]...)
			return
		}
	}
}

// rates returns the current fluid allocation in bytes/ms: the edge share
// and the per-server shares, jointly capped by the downloader's downlink.
// The arithmetic lives in internal/core; this assembles the offers. The
// returned slice aliases shard scratch and is valid until the next rates
// call on this shard.
func (sh *shard) rates(d *dl) (edge float64, per []float64, total float64) {
	if sh.cfg.BackstopEnabled {
		if len(d.servers) == 0 {
			// No peers serving: the DLM behaves like a plain multi-
			// connection download manager against the edge.
			edge = mbpsToBytesPerMs(sh.cfg.EdgeOnlyMbps)
		} else {
			edge = mbpsToBytesPerMs(sh.cfg.EdgePerConnMbps)
		}
	}
	offers := sh.offers[:0]
	for i := range d.servers {
		l := &d.servers[i]
		offers = append(offers, core.FairShareOffer(
			bpsToBytesPerMs(l.server.spec.UpBps), len(l.server.serving)))
	}
	sh.offers = offers
	a := core.AllocateInto(sh.alloc[:0], edge, offers, bpsToBytesPerMs(d.peer.spec.DownBps))
	sh.alloc = a.PerSource
	return a.Edge, a.PerSource, a.Total
}

// accrue advances a download's byte counters to virtual now at the current
// rates. Callers must accrue every affected download BEFORE any mutation
// that changes rates.
func (sh *shard) accrue(d *dl) {
	now := sh.eng.Now()
	dt := float64(now - d.lastAccrual)
	d.lastAccrual = now
	if dt <= 0 || d.finished {
		return
	}
	edge, per, _ := sh.rates(d)
	dEdge := edge * dt
	sum := dEdge
	for i := range per {
		per[i] *= dt // scratch slice: rescale in place to byte deltas
		sum += per[i]
	}
	if sum > 0 {
		// Clamp overshoot proportionally (completion events fire exactly on
		// time; only floating-point error and late events land here).
		if remaining := d.total - d.done(); sum > remaining {
			f := remaining / sum
			dEdge *= f
			for i := range per {
				per[i] *= f
			}
			sum = remaining
		}
		d.bytesInfra += dEdge
		for i := range per {
			d.servers[i].bytes += per[i]
		}
	} else {
		sum, dEdge = 0, 0
	}
	// The playback clock keeps running even over zero-rate segments — a
	// sourceless stream rebuffers, it does not pause time.
	if d.stream != nil {
		d.stream.advance(dt, sum, dEdge, d.total)
	}
}

// beginAffected starts a new affected-download set in the shard's scratch
// slice. Membership is tracked by stamping each dl with the current
// generation, so building and clearing the set allocates nothing and
// iteration order is deterministic (insertion order).
func (sh *shard) beginAffected() {
	sh.markGen++
	sh.affected = sh.affected[:0]
}

// addAffected inserts one download into the current affected set.
func (sh *shard) addAffected(d *dl) {
	if d.mark == sh.markGen {
		return
	}
	d.mark = sh.markGen
	sh.affected = append(sh.affected, d)
}

// excludeAffected stamps a download without inserting it, so later
// addAffected calls skip it.
func (sh *shard) excludeAffected(d *dl) { d.mark = sh.markGen }

// addServingOf inserts every download a peer is currently serving.
func (sh *shard) addServingOf(p *simPeer) {
	for _, d := range p.serving {
		sh.addAffected(d)
	}
}

// accrueAffected accrues the current affected set.
func (sh *shard) accrueAffected() {
	for _, d := range sh.affected {
		sh.accrue(d)
	}
}

// rescheduleAffected recomputes the completion event for the affected set.
func (sh *shard) rescheduleAffected() {
	for _, d := range sh.affected {
		sh.scheduleCompletion(d)
	}
}

func (sh *shard) scheduleCompletion(d *dl) {
	if d.finished {
		return
	}
	d.epoch++
	key := uint64(d.slot)<<32 | uint64(d.epoch)
	_, _, rate := sh.rates(d)
	if rate <= 0 {
		// Stalled (pure-p2p mode with no sources): retry peer discovery
		// shortly; the abort clock may fire first.
		sh.eng.After(60_000, sh.onStall, key)
		return
	}
	remainMs := int64((d.total-d.done())/rate) + 1
	sh.eng.After(remainMs, sh.onComplete, key)
}

// dlAt resolves a slot<<32|epoch event key to a live download, or nil if
// the download finished or the epoch went stale.
func (sh *shard) dlAt(key uint64) *dl {
	d := sh.dls[key>>32]
	if d == nil || d.epoch != uint32(key) {
		return nil
	}
	return d
}

func (sh *shard) handleComplete(key uint64) {
	d := sh.dlAt(key)
	if d == nil {
		return
	}
	sh.accrue(d)
	if d.done() >= d.total-1 {
		sh.finishDownload(d, protocol.OutcomeCompleted)
	} else {
		sh.scheduleCompletion(d)
	}
}

func (sh *shard) handleStall(key uint64) {
	if d := sh.dlAt(key); d != nil {
		sh.refreshServers(d)
	}
}

func (sh *shard) handleAbort(slot uint64) {
	d := sh.dls[slot]
	if d == nil {
		return
	}
	sh.accrue(d)
	sh.finishDownload(d, protocol.OutcomeAborted)
}

func (sh *shard) handleRequery(slot uint64) {
	d := sh.dls[slot]
	if d == nil {
		return
	}
	if len(d.servers) < sh.cfg.MaxServersPerDownload/4 {
		sh.attachInitialServersKeepCount(d)
	}
	sh.scheduleRequery(d)
}

func (sh *shard) handleKill(arg uint64) {
	d := sh.dls[arg>>32]
	sp := sh.peers[uint32(arg)]
	if d == nil || !sp.isServing(d) || !sp.online {
		return
	}
	sh.metrics.faultsInjected.Inc()
	sh.setOffline(sp)
}

// startDownload handles one workload request.
func (sh *shard) startDownload(req trace.Request) {
	p := sh.allPeers[req.PeerIndex]
	// The user is at the machine: force presence.
	sh.setOnline(p)

	obj := req.File.Object
	d := &dl{
		req: req, peer: p, obj: obj,
		slot:    uint32(len(sh.dls)),
		objIx:   sh.objIx[obj.ID],
		startMs: sh.eng.Now(), lastAccrual: sh.eng.Now(),
		total: float64(obj.Size),
		p2p:   obj.P2PEnabled,
	}
	sh.dls = append(sh.dls, d)
	// Outcome pre-draws (§5.2), from the shard's own stream.
	d.abortAtMs = -1
	if sh.rng.Float64() < sh.cfg.ImmediateAbortProb {
		d.abortAtMs = d.startMs + int64(sh.rng.Float64()*60_000)
	} else if sh.cfg.AbortRatePerHour > 0 {
		d.abortAtMs = d.startMs + expMs(sh.rng, 1/sh.cfg.AbortRatePerHour)
	}
	d.failOther = sh.rng.Float64() < sh.cfg.FailOtherProb
	sysProb := sh.cfg.FailSystemInfra
	if d.p2p {
		sysProb = sh.cfg.FailSystemP2P
	}
	d.failSystem = sh.rng.Float64() < sysProb
	// Streaming draw, from its own RNG stream so base scenarios are
	// untouched.
	if sh.cfg.StreamBitrateBps > 0 && sh.cfg.StreamFraction > 0 &&
		sh.streamRng.Float64() < sh.cfg.StreamFraction {
		d.stream = newStreamState(sh.cfg)
	}

	p.downloading = append(p.downloading, d)
	sh.metrics.started.Inc()
	sh.activeFlows++
	if d.p2p {
		sh.p2pAttempted++
		sh.attachInitialServers(d)
		sh.scheduleRequery(d)
	}
	if d.abortAtMs >= 0 {
		sh.eng.At(d.abortAtMs, sh.onAbort, uint64(d.slot))
	}
	sh.scheduleCompletion(d)
}

// attachInitialServers queries the (region-local) directory and connects up
// to MaxServersPerDownload compatible peers.
func (sh *shard) attachInitialServers(d *dl) {
	cands := sh.dir.Select(sh.cfg.Policy, selection.Query{
		Object:        d.obj.ID,
		Requester:     d.peer.spec.Home,
		RequesterGUID: d.peer.spec.GUID,
		RequesterNAT:  d.peer.spec.NAT,
		NowMs:         sh.eng.Now(),
		Rand:          sh.rng,
	})
	d.peersReturned = len(cands)
	sh.connectCandidates(d, cands)
}

// scheduleRequery keeps long-running swarms fed: "if connections to some of
// these peers cannot be established, additional queries are issued until a
// sufficient number of peer connections succeed" (§3.7). Fresh copies that
// registered since the first query also join this way.
func (sh *shard) scheduleRequery(d *dl) {
	// Requeries are capped: each costs directory work and rate
	// recomputation across the swarm, and in practice a download that has
	// not found peers after a handful of attempts will not.
	if d.requeries >= 5 {
		return
	}
	d.requeries++
	sh.eng.After(10*60_000, sh.onRequery, uint64(d.slot))
}

// refreshServers re-queries when a download has no sources (pure-p2p mode).
func (sh *shard) refreshServers(d *dl) {
	if d.finished || len(d.servers) > 0 {
		return
	}
	sh.attachInitialServersKeepCount(d)
	sh.scheduleCompletion(d)
}

func (sh *shard) attachInitialServersKeepCount(d *dl) {
	// Like attachInitialServers but preserves the Figure 6 "initially
	// returned" count from the first query.
	cands := sh.dir.Select(sh.cfg.Policy, selection.Query{
		Object:        d.obj.ID,
		Requester:     d.peer.spec.Home,
		RequesterGUID: d.peer.spec.GUID,
		RequesterNAT:  d.peer.spec.NAT,
		NowMs:         sh.eng.Now(),
		Rand:          sh.rng,
	})
	sh.connectCandidates(d, cands)
}

func (sh *shard) connectCandidates(d *dl, cands []protocol.PeerInfo) {
	attached := sh.attach[:0]
	for _, c := range cands {
		if len(d.servers)+len(attached) >= sh.cfg.MaxServersPerDownload {
			break
		}
		sp := sh.peerByGUID(c.GUID)
		if sp == nil || !sp.online || !sp.uploadsEnabled || sp == d.peer {
			continue
		}
		if sp.isServing(d) {
			continue // already serving this download
		}
		if sh.cfg.MaxUploadConnsPerPeer > 0 && len(sp.serving) >= sh.cfg.MaxUploadConnsPerPeer {
			continue // the peer's global upload-connection limit (§3.4)
		}
		if sh.rng.Float64() < sh.cfg.ConnFailureProb {
			continue // "if connections to some of these peers cannot be established..."
		}
		if sh.cfg.PerObjectUploadCap > 0 && sp.uploadsOf(d.objIx) >= sh.cfg.PerObjectUploadCap {
			// Upload cap reached: the peer stops serving this object
			// (§3.9) and leaves the directory for it.
			sh.dir.Unregister(d.obj.ID, sp.spec.GUID)
			continue
		}
		attached = append(attached, sp)
	}
	sh.attach = attached
	if len(attached) == 0 {
		return
	}
	// Rates of everything these servers already serve will change.
	sh.beginAffected()
	for _, sp := range attached {
		sh.addServingOf(sp)
	}
	sh.addAffected(d)
	sh.accrueAffected()
	for _, sp := range attached {
		sp.serving = append(sp.serving, d)
		sp.incUploads(d.objIx)
		d.servers = append(d.servers, srcLink{server: sp})
		sh.maybeKillServer(d, sp)
	}
	sh.rescheduleAffected()
}

// maybeKillServer is the simulator's fault layer: with probability
// ServerFailProb a freshly attached serving peer is scheduled to crash at a
// uniform point in the next ten minutes, forcing the download onto its
// remaining peers and the edge backstop (§3.3). All draws come from the
// shard's dedicated fault RNG so the base scenario stream is untouched.
func (sh *shard) maybeKillServer(d *dl, sp *simPeer) {
	if !sh.cfg.Faults.Enabled() {
		return
	}
	if sh.faultRng.Float64() >= sh.cfg.Faults.ServerFailProb {
		return
	}
	delay := int64(sh.faultRng.Float64()*600_000) + 1
	sh.eng.After(delay, sh.onKill, uint64(d.slot)<<32|uint64(sp.ix))
}

// detachAll removes a departing peer from every download it serves (server
// churn): accrue everything it affects at the old rates, drop the links,
// then reschedule the survivors at their new, faster rates.
func (sh *shard) detachAll(p *simPeer) {
	if len(p.serving) == 0 {
		return
	}
	sh.beginAffected()
	sh.addServingOf(p)
	sh.accrueAffected()
	for _, d := range p.serving {
		if !d.finished {
			d.removeServer(p)
		}
	}
	p.serving = p.serving[:0]
	sh.rescheduleAffected()
}

// finishDownload moves a download to a terminal state, emits the log
// record, and releases its server capacity.
func (sh *shard) finishDownload(d *dl, outcome protocol.Outcome) {
	if d.finished {
		return
	}
	// Retrofit rare failures onto would-be completions: a constant
	// per-download probability, truncating the transfer at a uniform
	// point (§5.2's "other causes (e.g., the user's disk is full)").
	endMs := sh.eng.Now()
	if outcome == protocol.OutcomeCompleted && (d.failOther || d.failSystem) {
		u := 0.1 + 0.9*sh.rng.Float64()
		endMs = d.startMs + int64(u*float64(endMs-d.startMs))
		d.bytesInfra *= u
		for i := range d.servers {
			d.servers[i].bytes *= u
		}
		if d.failSystem {
			outcome = protocol.OutcomeFailedSystem
		} else {
			outcome = protocol.OutcomeFailedOther
		}
	}
	d.finished = true
	d.epoch++

	// Free server capacity; remaining downloads on those servers speed up.
	sh.beginAffected()
	sh.excludeAffected(d)
	for i := range d.servers {
		sh.addServingOf(d.servers[i].server)
	}
	sh.accrueAffected()
	for i := range d.servers {
		d.servers[i].server.removeServing(d)
	}
	sh.rescheduleAffected()
	d.peer.removeDownloading(d)
	sh.activeFlows--
	sh.finishedFlows++
	sh.metrics.byOutcome[outcome].Inc()

	rec := accounting.DownloadRecord{
		GUID:          d.peer.spec.GUID,
		IP:            d.peer.spec.Home.IP,
		Object:        d.obj.ID,
		URLHash:       d.obj.URL,
		CP:            d.obj.CP,
		Size:          d.obj.Size,
		P2PEnabled:    d.obj.P2PEnabled,
		StartMs:       d.startMs,
		EndMs:         endMs,
		BytesInfra:    int64(d.bytesInfra),
		BytesPeers:    int64(d.bytesPeers()),
		Outcome:       outcome,
		PeersReturned: d.peersReturned,
	}
	if d.stream != nil {
		rec.Stream = d.stream.finalize(sh.cfg, d.startMs, endMs, d.total)
	}
	// Attributions go into the shard's arena; the record holds the range.
	off := uint32(len(sh.log.contribs))
	for i := range d.servers {
		l := &d.servers[i]
		if l.bytes <= 0 {
			continue
		}
		sh.log.contribs = append(sh.log.contribs, accounting.PeerContribution{
			GUID: l.server.spec.GUID, IP: l.server.spec.Home.IP, Bytes: int64(l.bytes),
		})
	}
	sh.log.downloads = append(sh.log.downloads, stampedDownload{
		at: sh.eng.Now(), rec: rec,
		contribOff: off, contribLen: uint32(len(sh.log.contribs)) - off,
	})

	// Release the slot: stale events resolve to nil, and the dl (with its
	// server links) becomes collectable.
	sh.dls[d.slot] = nil

	if outcome == protocol.OutcomeCompleted {
		sh.completeCache(d.peer, d.objIx)
	}
}
