package sim

import (
	"math"

	"netsession/internal/accounting"
	"netsession/internal/content"
)

// streamState is the fluid-flow analog of a live client's playback session
// (internal/streaming): the download already advances its byte counters
// piecewise-linearly between events, so playback is advanced analytically
// over the same segments instead of piece by piece. Within one accrual
// segment the download rate r is constant, playback drains at the bitrate c,
// and the buffer b(t) = done(t) - played(t) evolves linearly — so startup
// crossings, buffer-empty points and stall fractions all have closed forms.
type streamState struct {
	rateBytesMs  float64 // playback consumption c, bytes per virtual ms
	startupBytes float64 // buffer needed before playback starts
	pieceBytes   float64 // for converting byte totals to piece tallies

	doneBytes float64 // mirror of the download's accrued bytes
	played    float64 // bytes consumed by the player

	started   bool
	startupMs float64 // elapsed until the startup buffer filled

	starved    bool // playback currently rebuffering
	rebufCount int64
	rebufMs    float64
	// rescueBytes attributes edge bytes that arrived during stalled wall
	// time — the fluid analog of the live client's urgent-window edge
	// rescues.
	rescueBytes float64
}

func newStreamState(cfg *ScenarioConfig) *streamState {
	piece := float64(cfg.StreamPieceBytes)
	if piece <= 0 {
		piece = float64(cfg.Catalog.PieceSize)
	}
	if piece <= 0 {
		piece = float64(content.DefaultPieceSize)
	}
	startup := float64(cfg.StreamStartupBytes)
	if startup <= 0 {
		startup = 2 * piece
	}
	return &streamState{
		rateBytesMs:  float64(cfg.StreamBitrateBps) / 8000,
		startupBytes: startup,
		pieceBytes:   piece,
	}
}

// advance folds one accrual segment into the playback model: dt virtual ms
// during which the download received `added` bytes (`edgeAdded` of them from
// the edge) toward a `total`-byte object.
func (st *streamState) advance(dt, added, edgeAdded, total float64) {
	if dt <= 0 {
		return
	}
	r := added / dt
	done0 := st.doneBytes
	st.doneBytes += added
	elapsed := 0.0 // portion of the segment consumed by the startup phase
	if !st.started {
		need := math.Min(st.startupBytes, total)
		if st.doneBytes < need {
			st.startupMs += dt
			return
		}
		if done0 < need && r > 0 {
			elapsed = (need - done0) / r
		}
		st.startupMs += elapsed
		st.started = true
	}
	rem := dt - elapsed
	c := st.rateBytesMs
	if rem <= 0 || c <= 0 || st.played >= total {
		return
	}
	if st.starved && r >= c {
		st.starved = false // arrivals outpace playback again
	}
	if !st.starved {
		buffer := done0 + r*elapsed - st.played
		if c <= r || buffer >= (c-r)*rem {
			// The buffer never empties this segment.
			st.played = math.Min(st.played+c*rem, total)
			return
		}
		// Buffer empties mid-segment: smooth until the crossing, then the
		// player enters a rebuffer.
		x := buffer / (c - r)
		st.played += c * x
		rem -= x
		st.starved = true
		st.rebufCount++
	}
	// Starved tail: playback is gated by arrivals, so it progresses at r and
	// stalls for the remaining (1 - r/c) fraction of the wall time. Edge
	// bytes landing during that stalled time are the rescue contribution.
	stallFrac := 1 - r/c
	st.played = math.Min(st.played+r*rem, total)
	st.rebufMs += rem * stallFrac
	st.rescueBytes += edgeAdded * (rem * stallFrac) / dt
}

// finalize converts the playback state into the accounting sub-record at
// download end. A finished download's remaining buffer drains without
// further stalls, so played snaps to the bytes actually delivered.
func (st *streamState) finalize(cfg *ScenarioConfig, startMs, endMs int64, total float64) *accounting.StreamStats {
	played := math.Min(st.doneBytes, total)
	piecesTotal := int64(math.Ceil(total / st.pieceBytes))
	piecesPlayed := int64(math.Ceil(played / st.pieceBytes))
	if piecesPlayed > piecesTotal {
		piecesPlayed = piecesTotal
	}
	startup := int64(math.Round(st.startupMs))
	if !st.started {
		startup = endMs - startMs // still waiting when the download ended
	}
	return &accounting.StreamStats{
		BitrateBps:     cfg.StreamBitrateBps,
		StartupDelayMs: startup,
		RebufferCount:  st.rebufCount,
		RebufferMs:     int64(math.Round(st.rebufMs)),
		// A stall shifts every later deadline, so exactly the first piece of
		// each rebuffer misses — the live session counts the same way.
		DeadlineMisses:  st.rebufCount,
		PiecesPlayed:    piecesPlayed,
		PiecesTotal:     piecesTotal,
		EdgeRescueBytes: int64(st.rescueBytes),
	}
}
