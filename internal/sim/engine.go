// Package sim is the discrete-event simulator that stands in for the
// paper's production deployment. It executes the same directory, selection,
// policy and accounting code as the live system, but models data transfer at
// flow level: every download is a fluid flow fed by one edge connection and
// up to several peer connections, each serving peer dividing its uplink
// fairly across the downloads it serves, and each download capped by its
// own downlink. A month of virtual time with hundreds of thousands of peers
// runs in seconds, which is what makes regenerating the paper's figures
// tractable.
//
// The simulator is sharded by control-plane network region: peers only ever
// interact with peers of their own region (§3.7 — CNs query only local DNs),
// so each region runs as an independent single-goroutine event loop and the
// per-region logs are merged deterministically afterwards.
package sim

// Engine is a minimal discrete-event executor over a virtual millisecond
// clock. Each engine instance is single-goroutine by design: determinism
// beats intra-shard parallelism for reproducing figures. Events are stored
// by value in a 4-ary implicit heap — no per-event heap allocation, fewer
// levels and better cache locality than the binary container/heap it
// replaces (the event queue of a month-scale run holds hundreds of
// thousands of pending events).
//
// Handlers take a caller-packed uint64 argument instead of closing over
// their state: a shard binds each handler once (a method value stored in a
// struct field) and packs peer indexes, download slots and epochs into the
// arg. At million-peer scale this removes one closure allocation per
// scheduled event — hundreds of millions per run — and two long-lived
// closures per peer.
type Engine struct {
	now      int64
	seq      uint64
	executed int
	pq       []event
}

type event struct {
	t   int64
	seq uint64 // FIFO tiebreak for equal times
	arg uint64 // packed handler argument (peer index, slot<<32|epoch, …)
	fn  func(arg uint64)
}

// before reports heap ordering: earlier time first, FIFO within a time.
func (a *event) before(b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// Now returns the current virtual time in milliseconds.
func (e *Engine) Now() int64 { return e.now }

// Executed returns the cumulative number of events run so far; the periodic
// telemetry snapshots read it mid-run to compute events/sec.
func (e *Engine) Executed() int { return e.executed }

// Pending returns the number of scheduled events not yet executed.
func (e *Engine) Pending() int { return len(e.pq) }

// At schedules fn(arg) at virtual time tMs; times in the past run "now".
func (e *Engine) At(tMs int64, fn func(uint64), arg uint64) {
	if tMs < e.now {
		tMs = e.now
	}
	e.seq++
	e.pq = append(e.pq, event{t: tMs, seq: e.seq, arg: arg, fn: fn})
	e.siftUp(len(e.pq) - 1)
}

// After schedules fn(arg) dMs from now.
func (e *Engine) After(dMs int64, fn func(uint64), arg uint64) { e.At(e.now+dMs, fn, arg) }

// Run executes events in order until the queue drains or the clock passes
// untilMs. It returns the number of events executed.
func (e *Engine) Run(untilMs int64) int {
	n := 0
	for len(e.pq) > 0 {
		top := &e.pq[0]
		if top.t > untilMs {
			break
		}
		e.now = top.t
		fn, arg := top.fn, top.arg
		e.pop()
		fn(arg)
		n++
		e.executed++
	}
	if e.now < untilMs {
		e.now = untilMs
	}
	return n
}

// pop removes the minimum event, releasing its closure for GC.
func (e *Engine) pop() {
	last := len(e.pq) - 1
	e.pq[0] = e.pq[last]
	e.pq[last] = event{} // drop the closure reference
	e.pq = e.pq[:last]
	if last > 0 {
		e.siftDown(0)
	}
}

// siftUp restores heap order from child i upward (4-ary: parent = (i-1)/4).
func (e *Engine) siftUp(i int) {
	ev := e.pq[i]
	for i > 0 {
		p := (i - 1) / 4
		if !ev.before(&e.pq[p]) {
			break
		}
		e.pq[i] = e.pq[p]
		i = p
	}
	e.pq[i] = ev
}

// siftDown restores heap order from parent i downward
// (4-ary: children = 4i+1 … 4i+4).
func (e *Engine) siftDown(i int) {
	n := len(e.pq)
	ev := e.pq[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if e.pq[c].before(&e.pq[best]) {
				best = c
			}
		}
		if !e.pq[best].before(&ev) {
			break
		}
		e.pq[i] = e.pq[best]
		i = best
	}
	e.pq[i] = ev
}
