// Package sim is the discrete-event simulator that stands in for the
// paper's production deployment. It executes the same directory, selection,
// policy and accounting code as the live system, but models data transfer at
// flow level: every download is a fluid flow fed by one edge connection and
// up to several peer connections, each serving peer dividing its uplink
// fairly across the downloads it serves, and each download capped by its
// own downlink. A month of virtual time with tens of thousands of peers
// runs in seconds, which is what makes regenerating the paper's figures
// tractable.
package sim

import (
	"container/heap"
)

// Engine is a minimal discrete-event executor over a virtual millisecond
// clock. It is single-goroutine by design: determinism beats parallelism
// for reproducing figures.
type Engine struct {
	now      int64
	seq      uint64
	executed int
	pq       eventQueue
}

type event struct {
	t   int64
	seq uint64 // FIFO tiebreak for equal times
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Now returns the current virtual time in milliseconds.
func (e *Engine) Now() int64 { return e.now }

// Executed returns the cumulative number of events run so far; the periodic
// telemetry snapshots read it mid-run to compute events/sec.
func (e *Engine) Executed() int { return e.executed }

// At schedules fn at virtual time tMs; times in the past run "now".
func (e *Engine) At(tMs int64, fn func()) {
	if tMs < e.now {
		tMs = e.now
	}
	e.seq++
	heap.Push(&e.pq, &event{t: tMs, seq: e.seq, fn: fn})
}

// After schedules fn dMs from now.
func (e *Engine) After(dMs int64, fn func()) { e.At(e.now+dMs, fn) }

// Run executes events in order until the queue drains or the clock passes
// untilMs. It returns the number of events executed.
func (e *Engine) Run(untilMs int64) int {
	n := 0
	for e.pq.Len() > 0 {
		ev := e.pq[0]
		if ev.t > untilMs {
			break
		}
		heap.Pop(&e.pq)
		e.now = ev.t
		ev.fn()
		n++
		e.executed++
	}
	if e.now < untilMs {
		e.now = untilMs
	}
	return n
}
