package sim

import (
	"reflect"
	"testing"

	"netsession/internal/protocol"
)

func TestEngineOrdering(t *testing.T) {
	var e Engine
	var got []int
	add := func(v uint64) { got = append(got, int(v)) }
	e.At(30, add, 3)
	e.At(10, add, 1)
	e.At(20, add, 2)
	e.At(10, add, 11) // same time: FIFO
	n := e.Run(100)
	if n != 4 {
		t.Fatalf("ran %d events", n)
	}
	want := []int{1, 11, 2, 3} // args double as order labels
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
	if e.Now() != 100 {
		t.Errorf("Now=%d, want 100", e.Now())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	var e Engine
	fired := 0
	e.At(10, func(uint64) {
		e.After(5, func(uint64) { fired++ }, 0)
		e.After(1000, func(uint64) { fired += 100 }, 0) // beyond horizon
	}, 0)
	e.Run(100)
	if fired != 1 {
		t.Fatalf("fired=%d, want 1", fired)
	}
	// Continue past the old horizon: the pending event still fires.
	e.Run(2000)
	if fired != 101 {
		t.Fatalf("fired=%d, want 101", fired)
	}
}

func TestEnginePastEventsRunNow(t *testing.T) {
	var e Engine
	e.At(50, func(uint64) {
		e.At(10, func(uint64) {
			if e.Now() != 50 {
				t.Errorf("past event ran at %d, want 50", e.Now())
			}
		}, 0)
	}, 0)
	e.Run(100)
}

func runSmall(t testing.TB, mutate func(*ScenarioConfig)) *Result {
	t.Helper()
	cfg := SmallScenario()
	if mutate != nil {
		mutate(&cfg)
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunProducesConsistentLog(t *testing.T) {
	res := runSmall(t, nil)
	dls := res.Log.Downloads
	if len(dls) < 8000 {
		t.Fatalf("only %d download records for 10000 requests", len(dls))
	}
	outcomes := make(map[protocol.Outcome]int)
	for i := range dls {
		d := &dls[i]
		outcomes[d.Outcome]++
		if d.EndMs < d.StartMs {
			t.Fatal("negative duration")
		}
		if d.BytesInfra < 0 || d.BytesPeers < 0 {
			t.Fatal("negative bytes")
		}
		if got := d.TotalBytes(); got > d.Size+2 {
			t.Fatalf("download received %d bytes for a %d-byte object", got, d.Size)
		}
		if d.Outcome == protocol.OutcomeCompleted && d.TotalBytes() < d.Size-2 {
			t.Fatalf("completed download has only %d of %d bytes", d.TotalBytes(), d.Size)
		}
		if !d.P2PEnabled && d.BytesPeers != 0 {
			t.Fatal("p2p-disabled download has peer bytes")
		}
		var fromSum int64
		for _, pc := range d.FromPeers {
			fromSum += pc.Bytes
			if pc.GUID == d.GUID {
				t.Fatal("download served by itself")
			}
		}
		if diff := fromSum - d.BytesPeers; diff > int64(len(d.FromPeers))+2 || diff < -int64(len(d.FromPeers))-2 {
			t.Fatalf("per-peer bytes %d do not sum to BytesPeers %d", fromSum, d.BytesPeers)
		}
	}
	// §5.2 shapes: the overwhelming majority of downloads complete;
	// aborts and rare failures make up the rest.
	total := float64(len(dls))
	if f := float64(outcomes[protocol.OutcomeCompleted]) / total; f < 0.85 || f > 0.99 {
		t.Errorf("completion rate %.3f, want ≈0.92-0.94", f)
	}
	if outcomes[protocol.OutcomeAborted] == 0 {
		t.Error("no aborted downloads at all")
	}
	if f := float64(outcomes[protocol.OutcomeFailedSystem]) / total; f > 0.01 {
		t.Errorf("system failure rate %.4f, want ≈0.001-0.002", f)
	}
	if len(res.Log.Logins) == 0 || len(res.Log.Registrations) == 0 {
		t.Error("log missing logins or registrations")
	}
}

func TestPeerAssistOffloadsTraffic(t *testing.T) {
	res := runSmall(t, nil)
	var p2pInfra, p2pPeers float64
	var assisted, p2pTotal int
	for i := range res.Log.Downloads {
		d := &res.Log.Downloads[i]
		if !d.P2PEnabled || d.Outcome != protocol.OutcomeCompleted {
			continue
		}
		p2pTotal++
		p2pInfra += float64(d.BytesInfra)
		p2pPeers += float64(d.BytesPeers)
		if d.BytesPeers > 0 {
			assisted++
		}
	}
	if p2pTotal < 200 {
		t.Fatalf("only %d completed p2p downloads", p2pTotal)
	}
	eff := p2pPeers / (p2pInfra + p2pPeers)
	// §5.1: the production system averages 71.4% peer efficiency. The
	// small scenario has fewer copies per file, so accept a wide band but
	// require substantial offload.
	if eff < 0.35 || eff > 0.95 {
		t.Errorf("aggregate peer efficiency %.3f, want substantial (paper: 0.714)", eff)
	}
	if float64(assisted)/float64(p2pTotal) < 0.5 {
		t.Errorf("only %d/%d p2p downloads got any peer bytes", assisted, p2pTotal)
	}
}

func TestBackstopAblation(t *testing.T) {
	with := runSmall(t, nil)
	without := runSmall(t, func(c *ScenarioConfig) { c.BackstopEnabled = false })

	rate := func(r *Result) float64 {
		done, total := 0, 0
		for i := range r.Log.Downloads {
			total++
			if r.Log.Downloads[i].Outcome == protocol.OutcomeCompleted {
				done++
			}
		}
		if total == 0 {
			return 0
		}
		return float64(done) / float64(total)
	}
	rw, rwo := rate(with), rate(without)
	if rwo >= rw {
		t.Errorf("pure p2p completion rate %.3f should be below hybrid %.3f", rwo, rw)
	}
	if rw-rwo < 0.05 {
		t.Errorf("backstop ablation too weak: %.3f vs %.3f", rw, rwo)
	}
	// And no infra bytes at all without the backstop.
	for i := range without.Log.Downloads {
		if without.Log.Downloads[i].BytesInfra != 0 {
			t.Fatal("backstop-disabled run served infrastructure bytes")
		}
	}
}

func TestSelectionPolicyAblation(t *testing.T) {
	// With the full 40-peer fan-out and small-scale copy counts, both
	// policies return the same candidate set; cap the swarm fan-out so the
	// selection ORDER is what's measured, as it would be at production
	// copy counts.
	constrain := func(c *ScenarioConfig) { c.MaxServersPerDownload = 5 }
	local := runSmall(t, constrain)
	random := runSmall(t, func(c *ScenarioConfig) {
		constrain(c)
		c.Policy.LocalityAware = false
	})

	interAS := func(r *Result) (inter, total float64) {
		for i := range r.Log.Downloads {
			d := &r.Log.Downloads[i]
			dlAS := r.Scape.MustLookup(d.IP).ASN
			for _, pc := range d.FromPeers {
				total += float64(pc.Bytes)
				if r.Scape.MustLookup(pc.IP).ASN != dlAS {
					inter += float64(pc.Bytes)
				}
			}
		}
		return
	}
	li, lt := interAS(local)
	ri, rt := interAS(random)
	if lt == 0 || rt == 0 {
		t.Fatal("no p2p traffic to compare")
	}
	lf, rf := li/lt, ri/rt
	// Locality-aware selection must keep clearly more traffic inside ASes
	// (§6.1: 18% of NetSession p2p traffic stayed intra-AS).
	if lf >= rf {
		t.Errorf("locality-aware inter-AS share %.3f not below random %.3f", lf, rf)
	}
	if 1-lf < 0.03 {
		t.Errorf("intra-AS share %.3f too small under locality-aware selection", 1-lf)
	}
}

func TestDeterminism(t *testing.T) {
	a := runSmall(t, func(c *ScenarioConfig) { c.NumPeers = 1500; c.TotalDownloads = 2000; c.Days = 5 })
	b := runSmall(t, func(c *ScenarioConfig) { c.NumPeers = 1500; c.TotalDownloads = 2000; c.Days = 5 })
	if len(a.Log.Downloads) != len(b.Log.Downloads) {
		t.Fatalf("nondeterministic: %d vs %d downloads", len(a.Log.Downloads), len(b.Log.Downloads))
	}
	for i := range a.Log.Downloads {
		x, y := a.Log.Downloads[i], b.Log.Downloads[i]
		x.FromPeers, y.FromPeers = nil, nil
		if !reflect.DeepEqual(x, y) {
			t.Fatalf("record %d differs between identical runs", i)
		}
	}
}

func TestCopiesGrowForPopularFiles(t *testing.T) {
	res := runSmall(t, nil)
	counts := make(map[string]int)
	for _, reg := range res.Log.Registrations {
		counts[reg.Object.String()]++
	}
	maxCopies := 0
	for _, c := range counts {
		if c > maxCopies {
			maxCopies = c
		}
	}
	if maxCopies < 20 {
		t.Errorf("most-registered file has %d copies; popular p2p files should accumulate many", maxCopies)
	}
}
