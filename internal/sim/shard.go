package sim

import (
	"math/rand"

	"netsession/internal/accounting"
	"netsession/internal/content"
	"netsession/internal/geo"
	"netsession/internal/id"
	"netsession/internal/protocol"
	"netsession/internal/selection"
	"netsession/internal/trace"
)

// shard is one region's independent simulation: its own event engine,
// directory, RNG streams and log buffer. Peers only ever interact with
// peers of their own region (§3.7: CNs query only their local DN region),
// so shards share no mutable state and can run on parallel workers while
// staying bit-for-bit deterministic.
type shard struct {
	cfg    *ScenarioConfig
	region geo.NetworkRegion

	eng      Engine
	rng      *rand.Rand
	faultRng *rand.Rand
	// streamRng decides which requests are deadline-driven streams; like
	// faultRng it is its own stream so enabling streaming never perturbs a
	// base scenario's draws.
	streamRng *rand.Rand
	dir       *selection.Directory
	metrics   *simMetrics
	logf      func(format string, args ...any)

	peers  []*simPeer
	guidIx map[id.GUID]*simPeer
	// allPeers is the global population indexed like pop.Peers (shared,
	// read-only after setup); requests carry global peer indexes.
	allPeers []*simPeer

	// objIx/objID are the shared object-interning tables (read-only after
	// setup): 32-byte object IDs to dense uint32 indexes and back.
	objIx map[content.ObjectID]uint32
	objID []content.ObjectID

	// dls maps download slots to live downloads. Slots are never reused
	// within a run (the table is append-only and a finished download's slot
	// is nil-ed), so a stale event whose packed slot outlived its download
	// resolves to nil instead of aliasing a new one.
	dls []*dl

	// reqs is this region's slice of the global request stream, sorted by
	// time; requests are chain-scheduled one at a time to keep the event
	// queue small.
	reqs    []trace.Request
	nextReq int

	log shardLog

	// Event handlers, bound once at construction. Events carry a packed
	// uint64 argument and one of these function values instead of a fresh
	// closure — see the Engine doc.
	onChurn    func(uint64) // arg: peer index
	onRefresh  func(uint64) // arg: peer index
	onToggle   func(uint64) // arg: peer index
	onExpire   func(uint64) // arg: peerIx<<32 | objIx
	onFire     func(uint64) // arg unused
	onSnapshot func(uint64) // arg: snapshot interval ms
	onDirClear func(uint64) // arg unused
	onComplete func(uint64) // arg: slot<<32 | epoch
	onStall    func(uint64) // arg: slot<<32 | epoch
	onAbort    func(uint64) // arg: slot
	onRequery  func(uint64) // arg: slot
	onKill     func(uint64) // arg: slot<<32 | server peer index

	// Hot-path scratch buffers (reused across events; the shard is
	// single-goroutine so one of each suffices).
	offers   []float64 // peer upload offers for core.AllocateInto
	alloc    []float64 // per-source allocation result
	affected []*dl     // epoch-marked affected-download set
	attach   []*simPeer
	markGen  uint64

	// stats
	p2pAttempted  int
	activeFlows   int
	finishedFlows int
	lastEvents    int // events already added to the per-region counter
}

// shardLog buffers the records a shard emits, stamped with the virtual time
// they were appended at. Per-shard streams are time-ordered by construction;
// the coordinator merges them by (timestamp, region) into the global log.
//
// Per-peer attributions go into one arena slice per shard instead of one
// FromPeers allocation per record: a download record references its range
// by offset, and mergeLogs materializes capacity-clamped subslices. That
// turns millions of tiny allocations into a handful of arena growths.
type shardLog struct {
	downloads []stampedDownload
	contribs  []accounting.PeerContribution
	regs      []stampedReg
}

type stampedDownload struct {
	at  int64
	rec accounting.DownloadRecord // FromPeers left nil until merge
	// contribOff/contribLen locate the record's attributions in the
	// shard's contribution arena.
	contribOff uint32
	contribLen uint32
}

type stampedReg struct {
	at  int64
	rec accounting.RegistrationRecord
}

// shardStream derives a decorrelated RNG seed for (seed, region, salt)
// using the splitmix64 finalizer, so every shard's draw stream is a pure
// function of the scenario seed and its region — independent of worker
// count and execution order.
func shardStream(seed int64, region int, salt uint64) int64 {
	z := uint64(seed) ^ salt
	z += 0x9e3779b97f4a7c15 * (uint64(region) + 1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

func newShard(cfg *ScenarioConfig, region geo.NetworkRegion, m *simMetrics, logf func(string, ...any)) *shard {
	faultSeed := cfg.Faults.Seed
	if faultSeed == 0 {
		faultSeed = 1
	}
	sh := &shard{
		cfg:       cfg,
		region:    region,
		rng:       rand.New(rand.NewSource(shardStream(cfg.Seed, int(region), 0x5eed))),
		faultRng:  rand.New(rand.NewSource(shardStream(faultSeed, int(region), 0xfa17))),
		streamRng: rand.New(rand.NewSource(shardStream(cfg.Seed, int(region), 0x57e4))),
		dir:       selection.NewDirectory(region),
		metrics:   m,
		logf:      logf,
		guidIx:    make(map[id.GUID]*simPeer),
	}
	sh.onChurn = sh.handleChurn
	sh.onRefresh = sh.handleRefresh
	sh.onToggle = sh.handleToggle
	sh.onExpire = sh.handleExpire
	sh.onFire = sh.handleFire
	sh.onSnapshot = sh.handleSnapshot
	sh.onDirClear = sh.handleDirClear
	sh.onComplete = sh.handleComplete
	sh.onStall = sh.handleStall
	sh.onAbort = sh.handleAbort
	sh.onRequery = sh.handleRequery
	sh.onKill = sh.handleKill
	return sh
}

// Handler shims: unpack the event argument and dispatch. Peer indexes and
// download slots are shard-local; slots of finished downloads resolve to
// nil (the event is stale).
func (sh *shard) handleChurn(arg uint64)   { sh.churn(sh.peers[arg]) }
func (sh *shard) handleRefresh(arg uint64) { sh.refreshTick(sh.peers[arg]) }
func (sh *shard) handleToggle(arg uint64)  { sh.togglePeer(sh.peers[arg]) }
func (sh *shard) handleExpire(arg uint64)  { sh.expireCache(sh.peers[arg>>32], uint32(arg)) }
func (sh *shard) handleFire(uint64)        { sh.fireRequest() }
func (sh *shard) handleDirClear(uint64)    { sh.dir.Clear() }

// addPeer claims a peer spec for this shard; called in global peer order
// during setup so per-shard peer order is deterministic.
func (sh *shard) addPeer(spec *trace.PeerSpec) *simPeer {
	p := &simPeer{
		spec:   spec,
		region: sh.region,
		ix:     uint32(len(sh.peers)),
		info: protocol.PeerInfo{
			GUID:     spec.GUID,
			Addr:     spec.Home.IP.String() + ":7000",
			NAT:      spec.NAT,
			ASN:      uint32(spec.Home.ASN),
			Location: uint32(spec.Home.Location),
		},
		uploadsEnabled: spec.UploadsEnabledAtInstall,
	}
	sh.peers = append(sh.peers, p)
	sh.guidIx[spec.GUID] = p
	return p
}

// setupPeers draws each peer's initial presence, churn cycle, soft-state
// refresh cycle and preference toggles from the shard's RNG stream. Runs
// single-threaded during setup, in region order, so the stream is
// reproducible.
func (sh *shard) setupPeers() {
	cfg := sh.cfg
	for _, p := range sh.peers {
		if cfg.UploadEnabledOverride >= 0 {
			p.uploadsEnabled = sh.rng.Float64() < cfg.UploadEnabledOverride
		}
		p.online = sh.rng.Float64() < cfg.SessionOnHours/(cfg.SessionOnHours+cfg.SessionOffHours)
		sh.scheduleChurn(p)
		if cfg.RefreshIntervalHours > 0 {
			sh.scheduleRefresh(p)
		}
		// Preference toggles at random points in the trace (Table 3).
		for k := 0; k < p.spec.SettingChanges; k++ {
			at := int64(sh.rng.Float64() * float64(cfg.Days) * 86_400_000)
			sh.eng.At(at, sh.onToggle, uint64(p.ix))
		}
	}
}

// prepareRun schedules the run-wide machinery: the request chain, the
// telemetry snapshot loop, and the optional region-directory failure.
func (sh *shard) prepareRun(snapMs int64) {
	if len(sh.reqs) > 0 {
		sh.eng.At(sh.reqs[0].TimeMs, sh.onFire, 0)
	}
	sh.snapshotLoop(snapMs)
	if sh.cfg.DNFailureAtDay > 0 {
		// The DN database is lost; the directory repopulates from the
		// peers' soft-state refreshes (§3.8).
		sh.eng.At(int64(sh.cfg.DNFailureAtDay)*86_400_000, sh.onDirClear, 0)
	}
}

// fireRequest starts the next workload request and chains the one after it,
// keeping at most one pending request event in the queue.
func (sh *shard) fireRequest() {
	req := sh.reqs[sh.nextReq]
	sh.nextReq++
	if sh.nextReq < len(sh.reqs) {
		sh.eng.At(sh.reqs[sh.nextReq].TimeMs, sh.onFire, 0)
	}
	sh.startDownload(req)
}

// run executes the shard's event loop to the horizon.
func (sh *shard) run(untilMs int64) int {
	n := sh.eng.Run(untilMs)
	sh.logSnapshot() // final per-region totals
	return n
}

func (sh *shard) scheduleChurn(p *simPeer) {
	mean := sh.cfg.SessionOffHours
	if p.online {
		mean = sh.cfg.SessionOnHours
	}
	d := int64(sh.rng.ExpFloat64() * mean * 3_600_000)
	if d < 60_000 {
		d = 60_000
	}
	sh.eng.After(d, sh.onChurn, uint64(p.ix))
}

// scheduleRefresh keeps an online peer's directory entries fresh; the live
// client re-announces periodically for the same reason (soft state, §3.8).
func (sh *shard) scheduleRefresh(p *simPeer) {
	jitter := int64(sh.rng.Float64() * 600_000)
	sh.eng.After(int64(sh.cfg.RefreshIntervalHours*3_600_000)+jitter, sh.onRefresh, uint64(p.ix))
}

// refreshTick is one firing of the periodic soft-state refresh.
func (sh *shard) refreshTick(p *simPeer) {
	if p.online {
		sh.reregisterCache(p)
	}
	sh.scheduleRefresh(p)
}

func (sh *shard) churn(p *simPeer) {
	if p.online {
		// Keep the machine on while the user's own downloads run.
		if len(p.downloading) > 0 {
			sh.eng.After(30*60_000, sh.onChurn, uint64(p.ix))
			return
		}
		sh.setOffline(p)
	} else {
		sh.setOnline(p)
	}
	sh.scheduleChurn(p)
}

func (sh *shard) setOnline(p *simPeer) {
	if p.online {
		return
	}
	p.online = true
	sh.reregisterCache(p)
}

// reregisterCache announces unexpired cached objects after a (re)connect;
// the directory is soft state (§3.8). Expired entries are purged in place
// (the same lazy cleanup the map-based cache did). Per-object registrations
// are independent, so iteration order does not affect results; the slice
// makes it deterministic (completion order) anyway.
func (sh *shard) reregisterCache(p *simPeer) {
	if !p.uploadsEnabled {
		return
	}
	now := sh.eng.Now()
	kept := p.cache[:0]
	for _, e := range p.cache {
		if e.exp <= now {
			continue
		}
		kept = append(kept, e)
		sh.dir.Register(sh.objID[e.obj], selection.Entry{
			Info: p.info, Rec: p.spec.Home, Complete: true, RegisteredMs: now,
		})
	}
	p.cache = kept
}

func (sh *shard) setOffline(p *simPeer) {
	if !p.online {
		return
	}
	p.online = false
	sh.dir.DropPeer(p.spec.GUID)
	sh.detachAll(p)
}

// togglePeer flips the upload preference, with the directory consequences.
func (sh *shard) togglePeer(p *simPeer) {
	p.uploadsEnabled = !p.uploadsEnabled
	if !p.uploadsEnabled {
		sh.dir.DropPeer(p.spec.GUID)
		sh.detachAll(p)
	} else if p.online {
		sh.reregisterCache(p)
	}
}

// completeCache registers a freshly completed object for sharing.
func (sh *shard) completeCache(p *simPeer, obj uint32) {
	now := sh.eng.Now()
	exp := now + int64(sh.cfg.CacheTTLHours*3_600_000)
	oid := sh.objID[obj]
	had := p.cacheIndex(obj)
	if had >= 0 {
		p.cache[had].exp = exp
	} else {
		p.cache = append(p.cache, cacheEntry{obj: obj, exp: exp})
	}
	if p.uploadsEnabled && p.online {
		sh.dir.Register(oid, selection.Entry{
			Info: p.info, Rec: p.spec.Home, Complete: true, RegisteredMs: now,
		})
	}
	if had < 0 {
		// New copy in the system: one DN log entry (Figure 5 counts these).
		sh.log.regs = append(sh.log.regs, stampedReg{at: now, rec: accounting.RegistrationRecord{
			TimeMs: now, GUID: p.spec.GUID, Object: oid,
		}})
		sh.eng.At(exp, sh.onExpire, uint64(p.ix)<<32|uint64(obj))
	}
}

func (sh *shard) expireCache(p *simPeer, obj uint32) {
	i := p.cacheIndex(obj)
	if i >= 0 && p.cache[i].exp <= sh.eng.Now() {
		p.cache = append(p.cache[:i], p.cache[i+1:]...)
		sh.dir.Unregister(sh.objID[obj], p.spec.GUID)
	}
}

// peerByGUID resolves a directory GUID to this shard's peer; directories
// are region-local, so candidates always resolve within the shard.
func (sh *shard) peerByGUID(g id.GUID) *simPeer { return sh.guidIx[g] }
