package sim

import (
	"bytes"
	"encoding/json"
	"testing"

	"netsession/internal/faults"
)

func tinyScenario(c *ScenarioConfig) {
	c.NumPeers = 1500
	c.TotalDownloads = 2000
	c.Days = 5
}

// logBytes serializes the parts of a result that the fault layer could
// disturb, for byte-level comparison between runs.
func logBytes(t *testing.T, r *Result) []byte {
	t.Helper()
	b, err := json.Marshal(r.Log)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFaultsDisabledByteIdentical locks in the determinism contract: the
// fault layer draws from its own RNG, so a disabled layer — regardless of
// its seed — leaves the base scenario byte-identical.
func TestFaultsDisabledByteIdentical(t *testing.T) {
	a := runSmall(t, tinyScenario)
	b := runSmall(t, func(c *ScenarioConfig) {
		tinyScenario(c)
		c.Faults.Seed = 999 // seed without probability: still disabled
	})
	if !bytes.Equal(logBytes(t, a), logBytes(t, b)) {
		t.Fatal("disabled fault layer perturbed the base scenario")
	}
	if got := a.Telemetry.Counters["sim_faults_injected_total"]; got != 0 {
		t.Fatalf("disabled fault layer injected %d faults", got)
	}
}

// TestFaultsDeterministicAndEffective: same fault seed ⇒ same fault
// schedule ⇒ identical results; and the faults actually kill servers.
func TestFaultsDeterministicAndEffective(t *testing.T) {
	chaotic := func(c *ScenarioConfig) {
		tinyScenario(c)
		c.Faults = faults.SimConfig{Seed: 7, ServerFailProb: 0.5}
	}
	a := runSmall(t, chaotic)
	b := runSmall(t, chaotic)
	if !bytes.Equal(logBytes(t, a), logBytes(t, b)) {
		t.Fatal("same fault seed produced different results")
	}
	injected := a.Telemetry.Counters["sim_faults_injected_total"]
	if injected == 0 {
		t.Fatal("fault layer enabled but no server kills injected")
	}
	base := runSmall(t, tinyScenario)
	if bytes.Equal(logBytes(t, a), logBytes(t, base)) {
		t.Fatal("injected faults left the result unchanged")
	}
}
