package trace

import (
	"math"
	"math/rand"
	"testing"

	"netsession/internal/content"
	"netsession/internal/geo"
)

func testPopulation(t testing.TB, n int) *Population {
	t.Helper()
	cfg := geo.DefaultAtlasConfig()
	cfg.TailCountries = 20
	atlas := geo.GenerateAtlas(cfg)
	scape := geo.NewEdgeScape(atlas)
	pop, err := GeneratePopulation(atlas, scape, n, 11)
	if err != nil {
		t.Fatal(err)
	}
	return pop
}

func TestCustomerTablesConsistent(t *testing.T) {
	var dl, inst float64
	for _, c := range Customers {
		dl += c.DownloadShare
		inst += c.InstallShare
		sum := 0.0
		for _, w := range c.RegionMix {
			sum += w
		}
		if sum < 95 || sum > 105 {
			t.Errorf("%s region mix sums to %.1f, want ≈100", c.Name, sum)
		}
	}
	if math.Abs(dl-1) > 0.01 {
		t.Errorf("download shares sum to %.3f", dl)
	}
	if math.Abs(inst-1) > 0.01 {
		t.Errorf("install shares sum to %.3f", inst)
	}
	// Table 3 target: ≈31% of peers with uploads enabled.
	if f := UploadFractionTarget(); f < 0.28 || f > 0.36 {
		t.Errorf("upload-enabled calibration target %.3f, want ≈0.31", f)
	}
	if _, ok := CustomerByCP(104); !ok {
		t.Error("CustomerByCP(104) not found")
	}
	if _, ok := CustomerByCP(999); ok {
		t.Error("CustomerByCP(999) should not exist")
	}
}

func TestPopulationCalibration(t *testing.T) {
	pop := testPopulation(t, 30_000)
	n := float64(len(pop.Peers))

	enabled, singleAS, twoAS, moreAS, within10 := 0, 0, 0, 0, 0
	clones := make(map[CloneClass]int)
	for _, p := range pop.Peers {
		if p.UploadsEnabledAtInstall {
			enabled++
		}
		ases := map[geo.ASN]bool{p.Home.ASN: true}
		for _, a := range p.Away {
			ases[a.ASN] = true
		}
		switch len(ases) {
		case 1:
			singleAS++
		case 2:
			twoAS++
		default:
			moreAS++
		}
		if p.MaxRoamKm() <= 10 {
			within10++
		}
		clones[p.Clone]++
		if p.DownBps <= 0 || p.UpBps <= 0 {
			t.Fatal("non-positive bandwidth")
		}
	}
	if f := float64(enabled) / n; f < 0.27 || f > 0.37 {
		t.Errorf("uploads-enabled fraction %.3f, want ≈0.31", f)
	}
	if f := float64(singleAS) / n; f < 0.76 || f > 0.86 {
		t.Errorf("single-AS fraction %.3f, want ≈0.81 (§6.2)", f)
	}
	if f := float64(twoAS) / n; f < 0.09 || f > 0.18 {
		t.Errorf("two-AS fraction %.3f, want ≈0.13", f)
	}
	if f := float64(moreAS) / n; f < 0.03 || f > 0.10 {
		t.Errorf(">2-AS fraction %.3f, want ≈0.06", f)
	}
	if f := float64(within10) / n; f < 0.70 || f > 0.85 {
		t.Errorf("within-10km fraction %.3f, want ≈0.77", f)
	}
	nonLinear := float64(len(pop.Peers)-clones[CloneNone]) / n
	if nonLinear < 0.002 || nonLinear > 0.012 {
		t.Errorf("non-linear clone fraction %.4f, want ≈0.006", nonLinear)
	}
}

func TestPopulationUpstreamAsymmetry(t *testing.T) {
	pop := testPopulation(t, 5000)
	var down, up float64
	for _, p := range pop.Peers {
		down += float64(p.DownBps)
		up += float64(p.UpBps)
	}
	if ratio := down / up; ratio < 3 || ratio > 12 {
		t.Errorf("down/up ratio %.2f, want strongly asymmetric (≈5)", ratio)
	}
}

func TestCatalogCalibration(t *testing.T) {
	cat, err := GenerateCatalog(DefaultCatalogConfig())
	if err != nil {
		t.Fatal(err)
	}
	nP2P := 0
	large := 0
	for _, f := range cat.P2PFiles() {
		nP2P++
		if f.Object.Size > 500e6 {
			large++
		}
	}
	frac := float64(nP2P) / float64(len(cat.Files))
	if frac < 0.01 || frac > 0.03 {
		t.Errorf("p2p file fraction %.4f, want ≈0.017", frac)
	}
	if f := float64(large) / float64(nP2P); f < 0.7 {
		t.Errorf("only %.2f of p2p files exceed 500MB, want most (Figure 3a)", f)
	}
	if _, ok := cat.ObjectByID(cat.Files[0].Object.ID); !ok {
		t.Error("ObjectByID miss for known object")
	}
	if _, ok := cat.ObjectByID(content.ObjectID{1}); ok {
		t.Error("ObjectByID hit for unknown object")
	}
}

func TestWorkloadShapes(t *testing.T) {
	pop := testPopulation(t, 10_000)
	cat, err := GenerateCatalog(DefaultCatalogConfig())
	if err != nil {
		t.Fatal(err)
	}
	wcfg := DefaultWorkloadConfig()
	wcfg.TotalDownloads = 30_000
	reqs, err := GenerateWorkload(pop, cat, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != wcfg.TotalDownloads {
		t.Fatalf("got %d requests, want %d", len(reqs), wcfg.TotalDownloads)
	}
	var p2pReqs, p2pBytes, allBytes float64
	maxMs := int64(wcfg.Days) * 86_400_000
	for i, rq := range reqs {
		if i > 0 && rq.TimeMs < reqs[i-1].TimeMs {
			t.Fatal("requests not sorted by time")
		}
		if rq.TimeMs < 0 || rq.TimeMs >= maxMs {
			t.Fatalf("request time %d out of range", rq.TimeMs)
		}
		sz := float64(rq.File.Object.Size)
		allBytes += sz
		if rq.File.Object.P2PEnabled {
			p2pReqs++
			p2pBytes += sz
		}
	}
	// §5.1: p2p-enabled files carry 57.4% of bytes while being a tiny
	// share of requests.
	if share := p2pBytes / allBytes; share < 0.40 || share > 0.75 {
		t.Errorf("p2p byte share %.3f, want ≈0.57", share)
	}
	if share := p2pReqs / float64(len(reqs)); share > 0.20 {
		t.Errorf("p2p request share %.3f, want small", share)
	}
	// Table 2 headline: Europe receives ≈46% of all downloads.
	euReqs := 0
	for _, rq := range reqs {
		loc := pop.Atlas.Location(pop.Peers[rq.PeerIndex].Home.Location)
		if geo.ReportRegionOf(loc) == geo.RegionEurope {
			euReqs++
		}
	}
	if f := float64(euReqs) / float64(len(reqs)); f < 0.38 || f > 0.54 {
		t.Errorf("Europe download share %.3f, want ≈0.46", f)
	}
}

func TestWorkloadDiurnal(t *testing.T) {
	pop := testPopulation(t, 5000)
	cat, err := GenerateCatalog(DefaultCatalogConfig())
	if err != nil {
		t.Fatal(err)
	}
	wcfg := DefaultWorkloadConfig()
	wcfg.TotalDownloads = 20_000
	reqs, err := GenerateWorkload(pop, cat, wcfg)
	if err != nil {
		t.Fatal(err)
	}
	// In each requester's local time, evening hours must beat early-morning
	// hours clearly.
	var evening, morning int
	for _, rq := range reqs {
		p := pop.Peers[rq.PeerIndex]
		h := math.Mod(float64(rq.TimeMs)/3_600_000+float64(p.Home.TZOffset)+24*1000, 24)
		switch {
		case h >= 18 && h < 23:
			evening++
		case h >= 3 && h < 8:
			morning++
		}
	}
	if evening <= morning {
		t.Errorf("diurnal shape missing: evening=%d morning=%d", evening, morning)
	}
}

func TestGenerateLogins(t *testing.T) {
	pop := testPopulation(t, 2000)
	logins := GenerateLogins(pop, 31, 5)
	if len(logins) == 0 {
		t.Fatal("no logins")
	}
	perGUID := make(map[string]int)
	for i, l := range logins {
		if i > 0 && l.TimeMs < logins[i-1].TimeMs {
			t.Fatal("logins not sorted")
		}
		if l.Secondaries[0].IsZero() {
			t.Fatal("login without secondary GUIDs")
		}
		perGUID[l.GUID.String()]++
	}
	if len(perGUID) != len(pop.Peers) {
		t.Errorf("%d GUIDs logged in, want %d (every GUID at least once)",
			len(perGUID), len(pop.Peers))
	}
}

func TestLoginSettingChangesMatchSpec(t *testing.T) {
	pop := testPopulation(t, 4000)
	logins := GenerateLogins(pop, 31, 6)
	byGUID := make(map[string][]bool)
	for _, l := range logins {
		byGUID[l.GUID.String()] = append(byGUID[l.GUID.String()], l.UploadsEnabled)
	}
	specChanges := make(map[string]int)
	for _, p := range pop.Peers {
		specChanges[p.GUID.String()] = p.SettingChanges
	}
	for g, seq := range byGUID {
		changes := 0
		for i := 1; i < len(seq); i++ {
			if seq[i] != seq[i-1] {
				changes++
			}
		}
		// Observed changes can be at most the spec'd toggles (toggles may
		// collide on the same login index or fall past the final login).
		if changes > specChanges[g] {
			t.Fatalf("GUID %s shows %d changes, spec allows %d", g, changes, specChanges[g])
		}
	}
}

func TestSecondaryChainLinear(t *testing.T) {
	pop := testPopulation(t, 1)
	p := pop.Peers[0]
	p.Clone = CloneNone
	logins := generatePeerLogins(rand.New(rand.NewSource(1)), p, 20)
	// Consecutive windows must overlap by HistoryLen-1 entries.
	for i := 1; i < len(logins); i++ {
		prev, cur := logins[i-1].Secondaries, logins[i].Secondaries
		for k := 0; k+1 < len(cur); k++ {
			if cur[k+1] != prev[k] {
				t.Fatalf("login %d window does not slide linearly", i)
			}
		}
	}
}

func TestCatalogP2PShareFollowsEnableRate(t *testing.T) {
	cat, err := GenerateCatalog(DefaultCatalogConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(9))
	share := func(cp content.CPCode) float64 {
		p2p := 0
		const n = 5000
		for i := 0; i < n; i++ {
			f, err := cat.SampleFile(r, cp)
			if err != nil {
				t.Fatal(err)
			}
			if f.Object.P2PEnabled {
				p2p++
			}
		}
		return float64(p2p) / n
	}
	// Customer D ships uploads-enabled binaries (94%) and uses peer
	// delivery heavily; Customer A (0.5%) effectively does not.
	d, a := share(104), share(101)
	if d < 0.3 {
		t.Errorf("Customer D p2p request share %.3f, want large", d)
	}
	if a > 0.05 {
		t.Errorf("Customer A p2p request share %.3f, want tiny", a)
	}
	if d <= a {
		t.Error("p2p usage should follow the Table 4 enable rate")
	}
	if _, err := cat.SampleFile(r, 9999); err == nil {
		t.Error("unknown CP accepted")
	}
}
