package trace

import (
	"fmt"
	"math"
	"math/rand"

	"netsession/internal/content"
)

// FileSpec is one catalog entry: the object plus its popularity weight.
type FileSpec struct {
	Object *content.Object
	// Popularity is the relative request weight of the file within its
	// (customer, p2p-group) bucket.
	Popularity float64
}

// Catalog is the set of files NetSession distributes, organized per
// customer, with the per-file p2p policy bit assigned so that the fraction
// of p2p-enabled files and the byte share they carry match §5.1 ("peer-to-
// peer downloads were enabled for only 1.7% of the files, but these
// downloads accounted for 57.4% of the downloaded bytes").
type Catalog struct {
	Files []*FileSpec
	// ByCP groups file indices per content provider, split by policy.
	byCP map[content.CPCode]*cpFiles
}

type cpFiles struct {
	regular []int
	p2p     []int
	// Cumulative Zipf weights for sampling.
	regCum []float64
	p2pCum []float64
	// p2pShare is the probability a request to this provider targets a
	// p2p-enabled file. Providers that ship upload-enabled binaries are
	// the ones paying for peer-assisted delivery, so the share scales with
	// the Table 4 enable rate; the scale factor is calibrated so
	// p2p-enabled files carry ≈57% of all bytes (§5.1).
	p2pShare float64
}

// CatalogConfig controls catalog generation.
type CatalogConfig struct {
	// FilesPerCustomer is the total catalog size per provider.
	FilesPerCustomer int
	// P2PFileFraction is the share of files with peer delivery enabled
	// (paper: 0.017).
	P2PFileFraction float64
	// P2PShareFactor scales each customer's Table 4 enable rate into its
	// p2p request share.
	P2PShareFactor float64
	// ZipfAlpha is the popularity skew within each bucket (Figure 3b).
	ZipfAlpha float64
	// PieceSize for all objects.
	PieceSize int
	Seed      int64
}

// DefaultCatalogConfig returns the experiment defaults.
func DefaultCatalogConfig() CatalogConfig {
	return CatalogConfig{
		FilesPerCustomer: 400,
		P2PFileFraction:  0.017,
		P2PShareFactor:   0.55,
		ZipfAlpha:        0.9,
		PieceSize:        content.DefaultPieceSize,
		Seed:             2,
	}
}

// GenerateCatalog builds the synthetic catalog. Object sizes are lognormal:
// infrastructure-only files are typically tens of MB while p2p-enabled files
// are the multi-GB installers whose peer-assisted requests are "strongly
// biased towards large files; 82% of peer-assisted requests are for objects
// larger than 500 MB" (Figure 3a).
func GenerateCatalog(cfg CatalogConfig) (*Catalog, error) {
	if cfg.FilesPerCustomer <= 0 {
		return nil, fmt.Errorf("trace: FilesPerCustomer must be positive")
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	cat := &Catalog{byCP: make(map[content.CPCode]*cpFiles)}
	for _, cust := range Customers {
		cf := &cpFiles{p2pShare: cfg.P2PShareFactor * cust.UploadDefaultEnabled}
		if cf.p2pShare > 0.95 {
			cf.p2pShare = 0.95
		}
		nP2P := int(math.Round(float64(cfg.FilesPerCustomer) * cfg.P2PFileFraction))
		if nP2P < 1 {
			nP2P = 1
		}
		for i := 0; i < cfg.FilesPerCustomer; i++ {
			p2p := i < nP2P
			var sizeMB float64
			if p2p {
				// Median ≈ 1.2 GB, σ=0.8: P(size > 500 MB) ≈ 0.86.
				sizeMB = 1200 * math.Exp(r.NormFloat64()*0.8)
			} else {
				// Median scales with the customer's typical object size.
				sizeMB = cust.MeanObjectMB * math.Exp(r.NormFloat64()*1.0)
			}
			if sizeMB < 0.5 {
				sizeMB = 0.5
			}
			if sizeMB > 20000 {
				sizeMB = 20000
			}
			url := fmt.Sprintf("%s/object-%04d", cust.Name, i)
			obj, err := content.NewObject(cust.CP, url, 1, int64(sizeMB*1e6), cfg.PieceSize, p2p)
			if err != nil {
				return nil, err
			}
			ix := len(cat.Files)
			cat.Files = append(cat.Files, &FileSpec{Object: obj})
			if p2p {
				cf.p2p = append(cf.p2p, ix)
			} else {
				cf.regular = append(cf.regular, ix)
			}
		}
		// Zipf popularity within each bucket.
		cf.regCum = zipfCum(cat, cf.regular, cfg.ZipfAlpha)
		cf.p2pCum = zipfCum(cat, cf.p2p, cfg.ZipfAlpha)
		cat.byCP[cust.CP] = cf
	}
	return cat, nil
}

func zipfCum(cat *Catalog, ixs []int, alpha float64) []float64 {
	cum := make([]float64, len(ixs))
	total := 0.0
	for rank, ix := range ixs {
		w := 1 / math.Pow(float64(rank+1), alpha)
		cat.Files[ix].Popularity = w
		total += w
		cum[rank] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return cum
}

// SampleFile draws a file for a request to the given provider.
func (c *Catalog) SampleFile(r *rand.Rand, cp content.CPCode) (*FileSpec, error) {
	cf := c.byCP[cp]
	if cf == nil {
		return nil, fmt.Errorf("trace: unknown CP code %d", cp)
	}
	ixs, cum := cf.regular, cf.regCum
	if len(cf.p2p) > 0 && r.Float64() < cf.p2pShare {
		ixs, cum = cf.p2p, cf.p2pCum
	}
	if len(ixs) == 0 {
		return nil, fmt.Errorf("trace: CP %d has an empty bucket", cp)
	}
	x := r.Float64()
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return c.Files[ixs[lo]], nil
}

// ObjectByID finds a catalog object.
func (c *Catalog) ObjectByID(oid content.ObjectID) (*content.Object, bool) {
	for _, f := range c.Files {
		if f.Object.ID == oid {
			return f.Object, true
		}
	}
	return nil, false
}

// P2PFiles returns all p2p-enabled catalog entries.
func (c *Catalog) P2PFiles() []*FileSpec {
	var out []*FileSpec
	for _, f := range c.Files {
		if f.Object.P2PEnabled {
			out = append(out, f)
		}
	}
	return out
}
