package trace

import (
	"fmt"
	"math"
	"math/rand"

	"netsession/internal/content"
	"netsession/internal/geo"
	"netsession/internal/id"
	"netsession/internal/nat"
	"netsession/internal/protocol"
)

// CloneClass classifies an installation for the secondary-GUID study of
// §6.2/Figure 12.
type CloneClass uint8

// Clone classes and their observed shares among non-linear graphs.
const (
	// CloneNone: a normal installation; its secondary-GUID graph is a
	// linear chain (99.4% of graphs).
	CloneNone CloneClass = iota
	// CloneShortBranch: one long branch plus a single one-vertex short
	// branch — "a failed software update" (46.2% of non-linear graphs).
	CloneShortBranch
	// CloneTwoLong: two long branches — "a restored backup" (6.2%).
	CloneTwoLong
	// CloneManyBranches: several short or medium branches — re-imaging
	// (Internet café) or workstation cloning (23.5%).
	CloneManyBranches
	// CloneIrregular: highly irregular patterns with no explanation
	// (the remaining 24.1%).
	CloneIrregular
)

func (c CloneClass) String() string {
	switch c {
	case CloneNone:
		return "linear"
	case CloneShortBranch:
		return "short-branch"
	case CloneTwoLong:
		return "two-long"
	case CloneManyBranches:
		return "many-branches"
	case CloneIrregular:
		return "irregular"
	}
	return "unknown"
}

// nonLinearFraction is the share of secondary-GUID graphs that are trees
// rather than chains (§6.2: 0.6%).
const nonLinearFraction = 0.006

// PeerSpec is the static description of one synthetic peer, from which both
// the live system and the simulator can instantiate a NetSession client.
type PeerSpec struct {
	Index int
	GUID  id.GUID
	// Home is the peer's usual vantage point (IP, location, AS).
	Home geo.Record
	// Away lists alternative vantage points for mobile peers (laptop taken
	// to work, VPN, travel); empty for stationary peers.
	Away []geo.Record
	// AwayProb is the chance any given login uses an Away record.
	AwayProb float64

	NAT protocol.NATClass
	// Access-link capacity in bits per second.
	DownBps int64
	UpBps   int64

	// InstallCP is the provider whose bundle installed the client; it
	// determines the shipped upload default (Table 4).
	InstallCP content.CPCode
	// UploadsEnabledAtInstall is the shipped default.
	UploadsEnabledAtInstall bool
	// SettingChanges is how many times the user flips the setting during
	// the trace (Table 3).
	SettingChanges int

	Clone CloneClass

	// DailyLogins approximates how many control-plane connections the peer
	// makes per day ("between 8.75 and 10.90 million of the GUIDs connect
	// ... at least once" daily out of 26M, §4.2 — so peers are online on
	// roughly a third of days).
	DailyLogins float64
}

// UploadsEnabledAt returns the effective setting after the first n toggles
// have happened; the trace applies toggles at random logins.
func (p *PeerSpec) uploadsEnabledAfter(toggles int) bool {
	if toggles%2 == 0 {
		return p.UploadsEnabledAtInstall
	}
	return !p.UploadsEnabledAtInstall
}

// Population is the generated peer population plus indexes the workload
// sampler needs.
type Population struct {
	Peers []*PeerSpec
	// ByRegion indexes peer indices by Table 2 report region.
	ByRegion map[geo.ReportRegion][]int
	// ByRegionCP further indexes by the provider whose bundle installed
	// the client; used to model install affinity (users mostly download
	// from the provider whose application they installed).
	ByRegionCP map[geo.ReportRegion]map[content.CPCode][]int
	Atlas      *geo.Atlas
	Scape      *geo.EdgeScape
}

// GeneratePopulation creates n synthetic peers over the given atlas.
func GeneratePopulation(atlas *geo.Atlas, scape *geo.EdgeScape, n int, seed int64) (*Population, error) {
	r := rand.New(rand.NewSource(seed))
	natDist := nat.DefaultDistribution()
	pop := &Population{
		Peers:      make([]*PeerSpec, 0, n),
		ByRegion:   make(map[geo.ReportRegion][]int),
		ByRegionCP: make(map[geo.ReportRegion]map[content.CPCode][]int),
		Atlas:      atlas,
		Scape:      scape,
	}
	// Install-share sampler.
	var cum []float64
	total := 0.0
	for _, c := range Customers {
		total += c.InstallShare
		cum = append(cum, total)
	}
	for i := 0; i < n; i++ {
		home, err := scape.AllocateRandom(r)
		if err != nil {
			return nil, fmt.Errorf("trace: population: %w", err)
		}
		cust := &Customers[pick(cum, r.Float64()*total)]

		p := &PeerSpec{
			Index:       i,
			GUID:        id.RandGUID(r),
			Home:        home,
			NAT:         natDist.Sample(r),
			InstallCP:   cust.CP,
			DailyLogins: 0.25 + r.Float64()*0.5,
		}
		p.UploadsEnabledAtInstall = r.Float64() < cust.UploadDefaultEnabled
		p.SettingChanges = sampleSettingChanges(r, p.UploadsEnabledAtInstall)
		p.Clone = sampleCloneClass(r)
		assignBandwidth(r, atlas, p)
		if err := assignMobility(r, atlas, scape, p); err != nil {
			return nil, err
		}
		pop.Peers = append(pop.Peers, p)
		region := geo.ReportRegionOf(atlas.Location(home.Location))
		pop.ByRegion[region] = append(pop.ByRegion[region], i)
		if pop.ByRegionCP[region] == nil {
			pop.ByRegionCP[region] = make(map[content.CPCode][]int)
		}
		pop.ByRegionCP[region][cust.CP] = append(pop.ByRegionCP[region][cust.CP], i)
	}
	return pop, nil
}

func pick(cum []float64, x float64) int {
	for i, c := range cum {
		if x <= c {
			return i
		}
	}
	return len(cum) - 1
}

func sampleSettingChanges(r *rand.Rand, enabledDefault bool) int {
	x := r.Float64()
	once, more := disabledChangeOnce, disabledChangeMore
	if enabledDefault {
		once, more = enabledChangeOnce, enabledChangeMore
	}
	switch {
	case x < more:
		return 2 + r.Intn(3)
	case x < more+once:
		return 1
	default:
		return 0
	}
}

func sampleCloneClass(r *rand.Rand) CloneClass {
	if r.Float64() >= nonLinearFraction {
		return CloneNone
	}
	// Shares among non-linear graphs, Figure 12.
	x := r.Float64()
	switch {
	case x < 0.462:
		return CloneShortBranch
	case x < 0.462+0.062:
		return CloneTwoLong
	case x < 0.462+0.062+0.235:
		return CloneManyBranches
	default:
		return CloneIrregular
	}
}

// assignBandwidth draws access-link speeds from the peer's AS profile with
// lognormal dispersion, keeping the strong down/up asymmetry of residential
// broadband.
func assignBandwidth(r *rand.Rand, atlas *geo.Atlas, p *PeerSpec) {
	as, ok := atlas.AS(geo.ASN(p.Home.ASN))
	down, up := 10.0, 2.0
	if ok {
		down, up = as.DownMbpsMean, as.UpMbpsMean
	}
	// Lognormal with σ≈0.6 around the AS mean.
	factor := lognorm(r, 0.6)
	p.DownBps = int64(down * factor * 1e6)
	upFactor := lognorm(r, 0.6)
	p.UpBps = int64(up * upFactor * 1e6)
	if p.DownBps < 256_000 {
		p.DownBps = 256_000
	}
	if p.UpBps < 64_000 {
		p.UpBps = 64_000
	}
}

func lognorm(r *rand.Rand, sigma float64) float64 {
	// Mean-1 lognormal: exp(N(−σ²/2, σ)).
	return math.Exp(r.NormFloat64()*sigma - sigma*sigma/2)
}

// assignMobility gives 13.4% of peers a second AS and 6% more than two ASes
// (§6.2), and arranges that ≈77% of all peers stay within 10 km of home.
func assignMobility(r *rand.Rand, atlas *geo.Atlas, scape *geo.EdgeScape, p *PeerSpec) error {
	x := r.Float64()
	var altCount int
	switch {
	case x < 0.806:
		altCount = 0
	case x < 0.806+0.134:
		altCount = 1
	default:
		altCount = 2 + r.Intn(3)
	}
	if altCount == 0 {
		// A slice of stationary peers still roam within their city (new
		// DHCP lease, same AS+location): distance 0, same AS.
		if r.Float64() < 0.3 {
			ip, err := scape.AllocateIP(geo.ASN(p.Home.ASN), p.Home.Location)
			if err != nil {
				return err
			}
			p.Away = append(p.Away, scape.MustLookup(ip))
			p.AwayProb = 0.2
		}
		return nil
	}
	p.AwayProb = 0.25
	// Movers: most go far (another AS in the same or a different country);
	// a minority of multi-AS peers stay local (e.g. home + office across
	// town on different ISPs). Tuned so ~77% of all GUIDs stay within
	// 10 km: stationary (80.6%) minus far-local adjustments keeps us there
	// when ≈18% of movers are local.
	for k := 0; k < altCount; k++ {
		var rec geo.Record
		var err error
		if r.Float64() < 0.18 {
			// Local move: same location, different AS.
			as := atlas.SampleAS(r, p.Home.Country)
			ip, e := scape.AllocateIP(as.Number, p.Home.Location)
			if e != nil {
				return e
			}
			rec = scape.MustLookup(ip)
		} else {
			// Far move: fresh draw from the world population.
			rec, err = scape.AllocateRandom(r)
			if err != nil {
				return err
			}
		}
		p.Away = append(p.Away, rec)
	}
	return nil
}

// VantageAt picks the record a given login uses.
func (p *PeerSpec) VantageAt(r *rand.Rand) geo.Record {
	if len(p.Away) > 0 && r.Float64() < p.AwayProb {
		return p.Away[r.Intn(len(p.Away))]
	}
	return p.Home
}

// MaxRoamKm returns the farthest distance between any two vantage points of
// the peer — the quantity behind the "77% remained within 10 km" statistic.
func (p *PeerSpec) MaxRoamKm() float64 {
	pts := append([]geo.Record{p.Home}, p.Away...)
	max := 0.0
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := geo.DistanceKm(pts[i].Coord, pts[j].Coord); d > max {
				max = d
			}
		}
	}
	return max
}

// UploadFractionTarget returns the population-wide expected fraction of
// peers with uploads enabled at install, for calibration tests.
func UploadFractionTarget() float64 {
	total, en := 0.0, 0.0
	for _, c := range Customers {
		total += c.InstallShare
		en += c.InstallShare * c.UploadDefaultEnabled
	}
	return en / total
}
