package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"netsession/internal/accounting"
	"netsession/internal/geo"
	"netsession/internal/id"
)

// Request is one download request: at TimeMs, the peer with PeerIndex asks
// for File. The simulator turns requests into DownloadRecords.
type Request struct {
	TimeMs    int64
	PeerIndex int
	File      *FileSpec
}

// WorkloadConfig controls arrival generation.
type WorkloadConfig struct {
	// TotalDownloads is the number of requests over the whole trace
	// (paper: 12.5M over one month; experiments use a scaled count).
	TotalDownloads int
	// Days is the trace length in days (paper: 31).
	Days int
	// DiurnalAmplitude modulates arrivals by the requester's local hour
	// (Figure 3c shows "the usual diurnal patterns").
	DiurnalAmplitude float64
	// PeakLocalHour is where local demand peaks (evening).
	PeakLocalHour float64
	// InstallAffinity is the probability a request is made by a peer whose
	// client was installed by the same provider (users download from the
	// application they installed, §5.1's per-provider binary bundling).
	InstallAffinity float64
	Seed            int64
}

// DefaultWorkloadConfig returns the experiment defaults.
func DefaultWorkloadConfig() WorkloadConfig {
	return WorkloadConfig{
		TotalDownloads:   50_000,
		Days:             31,
		DiurnalAmplitude: 0.45,
		PeakLocalHour:    20,
		InstallAffinity:  0.7,
		Seed:             3,
	}
}

// diurnalWeight is the relative arrival intensity at a given local hour.
func diurnalWeight(localHour, amplitude, peak float64) float64 {
	return 1 + amplitude*math.Cos((localHour-peak)/24*2*math.Pi)
}

// GenerateWorkload produces the request stream, sorted by time. Requests are
// drawn jointly over (customer, region, peer, file) so the per-customer
// regional mixes reproduce Table 2, and request times honour the requester's
// local diurnal cycle.
func GenerateWorkload(pop *Population, cat *Catalog, cfg WorkloadConfig) ([]Request, error) {
	if cfg.TotalDownloads <= 0 || cfg.Days <= 0 {
		return nil, fmt.Errorf("trace: workload needs positive TotalDownloads and Days")
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	// Customer sampler by download share.
	var custCum []float64
	total := 0.0
	for _, c := range Customers {
		total += c.DownloadShare
		custCum = append(custCum, total)
	}

	// Per-customer region samplers, restricted to regions that actually
	// have peers (tiny populations may leave a region empty).
	type regionSampler struct {
		regions []geo.ReportRegion
		cum     []float64
	}
	samplers := make([]regionSampler, len(Customers))
	for ci, c := range Customers {
		var rs regionSampler
		t := 0.0
		for _, reg := range geo.ReportRegions {
			w := c.RegionMix[reg]
			if w <= 0 || len(pop.ByRegion[reg]) == 0 {
				continue
			}
			t += w
			rs.regions = append(rs.regions, reg)
			rs.cum = append(rs.cum, t)
		}
		if len(rs.regions) == 0 {
			return nil, fmt.Errorf("trace: customer %s has no reachable regions", c.Name)
		}
		for i := range rs.cum {
			rs.cum[i] /= t
		}
		samplers[ci] = rs
	}

	maxMs := int64(cfg.Days) * 86_400_000
	reqs := make([]Request, 0, cfg.TotalDownloads)
	for len(reqs) < cfg.TotalDownloads {
		ci := pick(custCum, r.Float64()*total)
		cust := &Customers[ci]
		rs := samplers[ci]
		reg := rs.regions[pick(rs.cum, r.Float64())]
		candidates := pop.ByRegion[reg]
		if r.Float64() < cfg.InstallAffinity {
			if own := pop.ByRegionCP[reg][cust.CP]; len(own) > 0 {
				candidates = own
			}
		}
		peerIx := candidates[r.Intn(len(candidates))]
		peer := pop.Peers[peerIx]

		// Rejection-sample a time honouring the peer's local diurnal cycle.
		var tMs int64
		for {
			tMs = int64(r.Float64() * float64(maxMs))
			localHour := math.Mod(float64(tMs)/3_600_000+float64(peer.Home.TZOffset)+24*1000, 24)
			w := diurnalWeight(localHour, cfg.DiurnalAmplitude, cfg.PeakLocalHour)
			if r.Float64()*(1+cfg.DiurnalAmplitude) <= w {
				break
			}
		}
		f, err := cat.SampleFile(r, cust.CP)
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, Request{TimeMs: tMs, PeerIndex: peerIx, File: f})
	}
	sort.Slice(reqs, func(i, j int) bool { return reqs[i].TimeMs < reqs[j].TimeMs })
	return reqs, nil
}

// GenerateLogins produces the login records for the whole population over
// the trace: connection times follow each peer's activity level and diurnal
// cycle; the vantage point exercises the mobility model; the upload-enable
// flag toggles per the Table 3 rates; and the secondary-GUID window evolves
// per the peer's clone class, including rollbacks.
func GenerateLogins(pop *Population, days int, seed int64) []accounting.LoginRecord {
	r := rand.New(rand.NewSource(seed))
	var out []accounting.LoginRecord
	for _, p := range pop.Peers {
		out = append(out, generatePeerLogins(r, p, days)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TimeMs < out[j].TimeMs })
	return out
}

func generatePeerLogins(r *rand.Rand, p *PeerSpec, days int) []accounting.LoginRecord {
	// Number of logins across the trace.
	n := 0
	for d := 0; d < days; d++ {
		if r.Float64() < p.DailyLogins {
			n++
		}
	}
	if n == 0 {
		n = 1 // every GUID in the trace logged in at least once
	}
	// Pick which logins flip the upload setting.
	toggleAt := make(map[int]bool, p.SettingChanges)
	for len(toggleAt) < p.SettingChanges && len(toggleAt) < n-1 {
		toggleAt[1+r.Intn(max(n-1, 1))] = true
	}

	sec := newSecondaryChain(r, p.Clone)
	toggles := 0
	recs := make([]accounting.LoginRecord, 0, n)
	for i := 0; i < n; i++ {
		if toggleAt[i] {
			toggles++
		}
		day := int64(i) * int64(days) / int64(n)
		// Place within the day at a diurnally plausible local hour.
		localHour := math.Mod(p.sampleLocalHour(r), 24)
		utcHour := math.Mod(localHour-float64(p.Home.TZOffset)+48, 24)
		t := day*86_400_000 + int64(utcHour*3_600_000)
		v := p.VantageAt(r)
		recs = append(recs, accounting.LoginRecord{
			TimeMs:          t,
			GUID:            p.GUID,
			IP:              v.IP,
			SoftwareVersion: "ns-3.1",
			UploadsEnabled:  p.uploadsEnabledAfter(toggles),
			Secondaries:     sec.login(r),
		})
	}
	return recs
}

func (p *PeerSpec) sampleLocalHour(r *rand.Rand) float64 {
	for {
		h := r.Float64() * 24
		if r.Float64()*1.45 <= diurnalWeight(h, 0.45, 20) {
			return h
		}
	}
}

// secondaryChain evolves a peer's secondary-GUID history across logins,
// including the rollback behaviours that produce the non-linear graphs of
// Figure 12.
type secondaryChain struct {
	class CloneClass
	hist  id.History
	// snapshot is the saved state a rollback restores (a backup image, a
	// pre-update state, or a master image).
	snapshot    id.History
	hasSnapshot bool
	loginCount  int
	// For CloneManyBranches: roll back to the master image every period
	// logins.
	period int
}

func newSecondaryChain(r *rand.Rand, class CloneClass) *secondaryChain {
	c := &secondaryChain{class: class}
	// Seed the chain with a few pre-trace restarts so windows are full.
	for i := 0; i < id.HistoryLen; i++ {
		c.hist.Push(id.RandSecondary(r))
	}
	c.period = 2 + r.Intn(3)
	return c
}

// login advances the chain by one restart and returns the window reported
// on this login.
func (c *secondaryChain) login(r *rand.Rand) [id.HistoryLen]id.Secondary {
	c.loginCount++
	switch c.class {
	case CloneShortBranch:
		// One failed update mid-life: push a doomed secondary, then restore.
		if c.loginCount == 4 {
			c.snapshot = c.hist
			c.hasSnapshot = true
		} else if c.loginCount == 5 && c.hasSnapshot {
			c.hist = c.snapshot // the previous login's secondary becomes a stub branch
			c.hasSnapshot = false
		}
	case CloneTwoLong:
		// One restored backup mid-life: both pre- and post-restore runs
		// are long.
		if c.loginCount == 3 {
			c.snapshot = c.hist
			c.hasSnapshot = true
		} else if c.loginCount == 8 && c.hasSnapshot {
			c.hist = c.snapshot
			c.hasSnapshot = false
		}
	case CloneManyBranches:
		// Re-imaged every night from the same master.
		if c.loginCount == 1 {
			c.snapshot = c.hist
			c.hasSnapshot = true
		} else if c.hasSnapshot && c.loginCount%c.period == 0 {
			c.hist = c.snapshot
		}
	case CloneIrregular:
		if c.loginCount == 2 {
			c.snapshot = c.hist
			c.hasSnapshot = true
		} else if c.hasSnapshot && r.Float64() < 0.3 {
			if r.Float64() < 0.5 {
				c.hist = c.snapshot
			} else {
				c.snapshot = c.hist
			}
		}
	}
	c.hist.Push(id.RandSecondary(r))
	return c.hist.Window
}
