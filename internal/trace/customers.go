// Package trace generates the synthetic peer population and workload that
// substitute for the proprietary Akamai production logs of October 2012.
// Every distribution is calibrated to a quantity the paper reports, so the
// analyses of Sections 4–6 run against inputs with the same shape:
//
//   - continental peer shares (§4.2, Figure 2) come from the geo atlas;
//   - per-customer regional download mixes are the rows of Table 2;
//   - per-customer upload-enable defaults are the row of Table 4;
//   - setting-change rates are Table 3;
//   - object sizes, popularity and diurnal arrivals follow Figure 3;
//   - mobility matches §6.2 (80.6%/13.4%/6% of GUIDs in 1/2/>2 ASes,
//     77% of GUIDs staying within 10 km);
//   - cloning/re-imaging patterns match Figure 12.
package trace

import (
	"netsession/internal/content"
	"netsession/internal/geo"
)

// Customer models one of the ten largest content providers (Customers A–J
// in the paper). The numbers in Customers below are transcribed from
// Tables 2 and 4.
type Customer struct {
	CP   content.CPCode
	Name string
	// DownloadShare is the customer's share of all downloads.
	DownloadShare float64
	// InstallShare is the customer's share of NetSession installations
	// (the binary is bundled by the provider the user first downloaded
	// from, §5.1).
	InstallShare float64
	// RegionMix is the Table 2 row: share of this customer's downloads per
	// report region. Rows are normalized at load.
	RegionMix map[geo.ReportRegion]float64
	// UploadDefaultEnabled is the Table 4 row: the fraction of this
	// customer's installations whose binary shipped with uploads enabled.
	UploadDefaultEnabled float64
	// MeanObjectMB and large-file parameters shape the customer's catalog.
	MeanObjectMB float64
}

func mix(usE, usW, amO, in, cn, asO, eu, af, oc float64) map[geo.ReportRegion]float64 {
	return map[geo.ReportRegion]float64{
		geo.RegionUSEast: usE, geo.RegionUSWest: usW, geo.RegionAmericasOther: amO,
		geo.RegionIndia: in, geo.RegionChina: cn, geo.RegionAsiaOther: asO,
		geo.RegionEurope: eu, geo.RegionAfrica: af, geo.RegionOceania: oc,
	}
}

// Customers are the ten largest content providers. RegionMix values are the
// Table 2 percentages; UploadDefaultEnabled the Table 4 percentages.
// DownloadShare and InstallShare are free parameters chosen so that the
// aggregate rows reproduce the paper's "All customers" mix (≈46% Europe) and
// the ≈31% overall upload-enabled fraction of Table 3.
var Customers = []Customer{
	{CP: 101, Name: "Customer A", DownloadShare: 0.17, InstallShare: 0.10,
		RegionMix: mix(0, 0, 12, 6, 6, 18, 51, 4, 3), UploadDefaultEnabled: 0.005, MeanObjectMB: 80},
	{CP: 102, Name: "Customer B", DownloadShare: 0.07, InstallShare: 0.08,
		RegionMix: mix(2, 1, 1, 11, 0, 61, 6, 17, 1), UploadDefaultEnabled: 0.20, MeanObjectMB: 50},
	{CP: 103, Name: "Customer C", DownloadShare: 0.09, InstallShare: 0.06,
		RegionMix: mix(13, 6, 15, 1, 0, 8, 55, 1, 2), UploadDefaultEnabled: 0.02, MeanObjectMB: 60},
	{CP: 104, Name: "Customer D", DownloadShare: 0.07, InstallShare: 0.12,
		RegionMix: mix(22, 21, 6, 0, 0, 3, 45, 0, 3), UploadDefaultEnabled: 0.94, MeanObjectMB: 300},
	{CP: 105, Name: "Customer E", DownloadShare: 0.13, InstallShare: 0.08,
		RegionMix: mix(5, 3, 8, 2, 1, 29, 48, 2, 3), UploadDefaultEnabled: 0.02, MeanObjectMB: 70},
	{CP: 106, Name: "Customer F", DownloadShare: 0.03, InstallShare: 0.04,
		RegionMix: mix(0, 0, 0, 0, 0, 0, 100, 0, 0), UploadDefaultEnabled: 0.45, MeanObjectMB: 150},
	{CP: 107, Name: "Customer G", DownloadShare: 0.12, InstallShare: 0.16,
		RegionMix: mix(8, 3, 12, 2, 8, 20, 45, 2, 2), UploadDefaultEnabled: 0.47, MeanObjectMB: 250},
	{CP: 108, Name: "Customer H", DownloadShare: 0.17, InstallShare: 0.12,
		RegionMix: mix(6, 4, 7, 4, 2, 20, 53, 2, 2), UploadDefaultEnabled: 0.005, MeanObjectMB: 60},
	{CP: 109, Name: "Customer I", DownloadShare: 0.06, InstallShare: 0.10,
		RegionMix: mix(5, 2, 18, 0, 0, 15, 57, 1, 1), UploadDefaultEnabled: 0.91, MeanObjectMB: 400},
	{CP: 110, Name: "Customer J", DownloadShare: 0.09, InstallShare: 0.14,
		RegionMix: mix(42, 24, 14, 0, 0, 5, 11, 1, 3), UploadDefaultEnabled: 0.005, MeanObjectMB: 90},
}

// CustomerByCP returns the customer with the given CP code.
func CustomerByCP(cp content.CPCode) (*Customer, bool) {
	for i := range Customers {
		if Customers[i].CP == cp {
			return &Customers[i], true
		}
	}
	return nil, false
}

// Table 3 setting-change rates: how often users change the upload-enable
// setting between logins, conditioned on the shipped default.
const (
	// Of peers whose binary shipped with uploads disabled:
	disabledChangeOnce = 0.0003 // 0.03% flip it once
	disabledChangeMore = 0.0001 // 0.01% flip it two or more times
	// Of peers whose binary shipped with uploads enabled:
	enabledChangeOnce = 0.0180 // 1.80%
	enabledChangeMore = 0.0009 // 0.09%
)
