package core

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestAllocateUncapped(t *testing.T) {
	a := Allocate(3, []float64{1, 2}, 100)
	if !almost(a.Edge, 3) || !almost(a.PerSource[0], 1) || !almost(a.PerSource[1], 2) {
		t.Fatalf("uncapped allocation distorted: %+v", a)
	}
	if !almost(a.Total, 6) {
		t.Fatalf("Total=%v", a.Total)
	}
	if !almost(a.Efficiency(), 0.5) {
		t.Fatalf("Efficiency=%v", a.Efficiency())
	}
}

func TestAllocateCapped(t *testing.T) {
	a := Allocate(6, []float64{2, 4}, 6) // offers 12, cap 6: halve everything
	if !almost(a.Edge, 3) || !almost(a.PerSource[0], 1) || !almost(a.PerSource[1], 2) {
		t.Fatalf("capped allocation wrong: %+v", a)
	}
	if !almost(a.Total, 6) {
		t.Fatalf("Total=%v", a.Total)
	}
	// Efficiency is invariant under capping: proportional scaling.
	if !almost(a.Efficiency(), 0.5) {
		t.Fatalf("Efficiency=%v", a.Efficiency())
	}
}

func TestAllocateDegenerate(t *testing.T) {
	a := Allocate(0, nil, 10)
	if a.Total != 0 || a.Efficiency() != 0 {
		t.Fatalf("zero allocation: %+v", a)
	}
	a = Allocate(-5, []float64{-1}, 10)
	if a.Total != 0 {
		t.Fatalf("negative inputs not clamped: %+v", a)
	}
	// Zero downlink means uncapped (capacity unknown).
	a = Allocate(4, []float64{4}, 0)
	if !almost(a.Total, 8) {
		t.Fatalf("zero downlink should not cap: %+v", a)
	}
}

func TestAllocateProperties(t *testing.T) {
	f := func(edge float64, offers []float64, downlink float64) bool {
		edge = sane(edge)
		downlink = sane(downlink)
		for i := range offers {
			offers[i] = sane(offers[i])
		}
		a := Allocate(edge, offers, downlink)
		// Never exceeds downlink (when positive).
		if downlink > 0 && a.Total > downlink*(1+1e-9)+1e-9 {
			return false
		}
		// Components sum to Total (relative tolerance: sums of many
		// float64 terms accumulate rounding).
		lhs, rhs := a.Edge+a.PeerRate(), a.Total
		scale := math.Max(1, math.Max(math.Abs(lhs), math.Abs(rhs)))
		if math.Abs(lhs-rhs) > 1e-9*scale {
			return false
		}
		// Efficiency in [0,1].
		e := a.Efficiency()
		return e >= 0 && e <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// sane maps arbitrary float64s into a numerically tame non-negative range.
func sane(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	if v < 0 {
		v = -v
	}
	return math.Mod(v, 1e9)
}

func TestFairShareOffer(t *testing.T) {
	if got := FairShareOffer(8, 4); !almost(got, 2) {
		t.Errorf("FairShareOffer=%v", got)
	}
	if FairShareOffer(8, 0) != 0 || FairShareOffer(-1, 3) != 0 {
		t.Error("degenerate offers must be zero")
	}
}

func TestExpectedEfficiencyMonotone(t *testing.T) {
	// Figure 6's shape: efficiency rises with the number of serving peers
	// and saturates.
	prev := -1.0
	for n := 0; n <= 40; n++ {
		e := ExpectedEfficiency(n, 1.0, 3.0, 18.0)
		if e < prev-1e-9 {
			t.Fatalf("efficiency not monotone at n=%d: %v < %v", n, e, prev)
		}
		prev = e
	}
	if prev < 0.9 {
		t.Errorf("efficiency at n=40 is %.3f, expected near saturation", prev)
	}
	if e0 := ExpectedEfficiency(0, 1, 3, 18); e0 != 0 {
		t.Errorf("no peers should mean zero efficiency, got %v", e0)
	}
	// The paper's operating point: ≈25-30 peers at ≈1 Mbps versus a few
	// Mbps of backstop lands near 80% (Figure 6).
	if e := ExpectedEfficiency(27, 1, 3, 100); e < 0.75 || e > 0.95 {
		t.Errorf("paper operating point gives %.3f, want ≈0.9", e)
	}
}
