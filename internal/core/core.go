// Package core models the resource arithmetic at the heart of peer-assisted
// delivery: one download fed by an infrastructure backstop plus a set of
// peer upload offers, jointly limited by the receiver's downlink. This is
// the paper's central mechanism (§3.3) reduced to its math — the simulator
// allocates every transfer with it, and the analyses' peer-efficiency
// quantity (§5.1) is defined over its output.
package core

// Allocation is the instantaneous rate split of one download across its
// sources. Units are caller-defined (the simulator uses bytes/ms); only
// ratios and sums matter here.
type Allocation struct {
	// Edge is the rate granted to the infrastructure connection.
	Edge float64
	// PerSource are the rates granted to each serving peer, index-aligned
	// with the offers passed to Allocate.
	PerSource []float64
	// Total is the download's aggregate rate.
	Total float64
}

// Allocate splits a download's capacity across the edge backstop and the
// peer offers. Sources are scaled proportionally when their combined offer
// exceeds the receiver's downlink — the TCP-fair outcome when all sources
// stream concurrently into one access link. Negative inputs are treated as
// zero.
func Allocate(edge float64, offers []float64, downlink float64) Allocation {
	return AllocateInto(nil, edge, offers, downlink)
}

// AllocateInto is Allocate with a caller-provided backing slice for
// PerSource: dst is truncated and appended to, so a caller that reuses the
// returned slice across calls allocates nothing in steady state. The
// simulator's flow hot path recomputes allocations on every swarm-membership
// change; this variant keeps that loop allocation-free.
func AllocateInto(dst []float64, edge float64, offers []float64, downlink float64) Allocation {
	if edge < 0 {
		edge = 0
	}
	a := Allocation{Edge: edge, PerSource: append(dst[:0], offers...)}
	sum := edge
	for i, o := range a.PerSource {
		if o < 0 {
			a.PerSource[i] = 0
			o = 0
		}
		sum += o
	}
	if sum <= 0 {
		return a
	}
	f := 1.0
	if downlink > 0 && sum > downlink {
		f = downlink / sum
	}
	a.Edge *= f
	for i := range a.PerSource {
		a.PerSource[i] *= f
	}
	a.Total = sum * f
	return a
}

// PeerRate returns the aggregate rate served by peers.
func (a Allocation) PeerRate() float64 {
	s := 0.0
	for _, v := range a.PerSource {
		s += v
	}
	return s
}

// Efficiency is the fraction of the download served by peers — the paper's
// "key quantity of interest" (§5.1). Zero-rate allocations have zero
// efficiency.
func (a Allocation) Efficiency() float64 {
	if a.Total <= 0 {
		return 0
	}
	return a.PeerRate() / a.Total
}

// FairShareOffer is the rate one serving peer offers one of its downloads:
// its uplink divided across the transfers it serves. This is the per-source
// offer the directory-selected swarm presents to Allocate.
func FairShareOffer(uplink float64, concurrentUploads int) float64 {
	if uplink <= 0 || concurrentUploads <= 0 {
		return 0
	}
	return uplink / float64(concurrentUploads)
}

// ExpectedEfficiency predicts steady-state peer efficiency for a download
// served by n identical peers offering `offer` each against a backstop of
// `edge`, downlink-capped — the back-of-envelope behind Figure 6's shape:
// efficiency rises as n/(n+edge/offer) and saturates near 1.
func ExpectedEfficiency(n int, offer, edge, downlink float64) float64 {
	offers := make([]float64, n)
	for i := range offers {
		offers[i] = offer
	}
	return Allocate(edge, offers, downlink).Efficiency()
}
