// Package retry is the shared resilience layer: jittered exponential
// backoff, bounded retry loops, and per-target circuit breakers. Every
// unreliable path in the system — edge HTTP fetches, the persistent control
// connection, swarm dialing — goes through it, which is what lets the client
// keep "all of the benefits of a conventional CDN" (§3.3) when peers,
// servers or the network misbehave: failures are retried with decorrelated
// delays instead of fixed sleeps, and persistently failing targets are
// quarantined instead of hammered.
package retry

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Defaults used when Backoff fields are zero.
const (
	DefaultBase   = 200 * time.Millisecond
	DefaultMax    = 30 * time.Second
	DefaultFactor = 2.0
	DefaultJitter = 0.5
)

// Backoff produces jittered exponential delays: attempt n waits roughly
// Base·Factorⁿ, capped at Max, with each delay drawn uniformly from
// [d·(1−Jitter), d·(1+Jitter)] so synchronized clients decorrelate — the
// thundering-herd concern behind the control plane's rate-limited
// reconnection (§3.8). Not safe for concurrent use; each retry loop owns
// one.
type Backoff struct {
	Base   time.Duration // first delay; zero selects DefaultBase
	Max    time.Duration // cap on the un-jittered delay; zero selects DefaultMax
	Factor float64       // growth per attempt; zero selects DefaultFactor
	Jitter float64       // fraction of the delay randomized; zero selects DefaultJitter, negative disables
	Rand   *rand.Rand    // randomness source; nil lazily seeds a private one

	attempt int
}

// Next returns the delay before the upcoming attempt and advances the
// schedule.
func (b *Backoff) Next() time.Duration {
	base, max, factor, jitter := b.Base, b.Max, b.Factor, b.Jitter
	if base <= 0 {
		base = DefaultBase
	}
	if max <= 0 {
		max = DefaultMax
	}
	if factor <= 0 {
		factor = DefaultFactor
	}
	switch {
	case jitter == 0:
		jitter = DefaultJitter
	case jitter < 0:
		jitter = 0
	}
	d := float64(base)
	for i := 0; i < b.attempt; i++ {
		d *= factor
		if d >= float64(max) {
			d = float64(max)
			break
		}
	}
	b.attempt++
	if jitter > 0 {
		if b.Rand == nil {
			b.Rand = rand.New(rand.NewSource(time.Now().UnixNano()))
		}
		d *= 1 - jitter + 2*jitter*b.Rand.Float64()
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// Reset restarts the schedule after a success.
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempt returns how many delays have been handed out since the last
// Reset.
func (b *Backoff) Attempt() int { return b.attempt }

// Do runs fn until it succeeds, the attempt budget is spent, or the context
// ends, sleeping a jittered backoff between attempts. maxAttempts <= 0 means
// retry until the context ends.
func Do(ctx context.Context, b *Backoff, maxAttempts int, fn func() error) error {
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return fmt.Errorf("retry: %w (after %d attempts: %v)", err, attempt-1, lastErr)
			}
			return err
		}
		lastErr = fn()
		if lastErr == nil {
			return nil
		}
		if maxAttempts > 0 && attempt >= maxAttempts {
			return fmt.Errorf("retry: budget exhausted after %d attempts: %w", attempt, lastErr)
		}
		t := time.NewTimer(b.Next())
		select {
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("retry: %w (after %d attempts: %v)", ctx.Err(), attempt, lastErr)
		case <-t.C:
		}
	}
}

// State is a circuit breaker's position.
type State int32

const (
	// Closed passes traffic and counts consecutive failures.
	Closed State = iota
	// Open rejects traffic until the cooldown elapses.
	Open
	// HalfOpen lets exactly one probe through; its outcome decides.
	HalfOpen
)

func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// BreakerConfig tunes a Breaker; the zero value selects the defaults.
type BreakerConfig struct {
	// Threshold is how many consecutive failures trip the breaker; zero
	// selects 3.
	Threshold int
	// Cooldown is how long a freshly tripped breaker stays open before a
	// half-open probe; zero selects 1s. Consecutive trips double it.
	Cooldown time.Duration
	// MaxCooldown caps the doubling; zero selects 30s.
	MaxCooldown time.Duration
	// Now supplies time (tests inject a fake clock); nil uses time.Now.
	Now func() time.Time
	// OnTrip runs (outside the breaker lock) every time the breaker opens;
	// telemetry hooks go here.
	OnTrip func()
}

// Breaker is a per-target circuit breaker. Closed it passes everything and
// counts consecutive failures; at Threshold it opens and rejects; after
// Cooldown it lets one probe through (half-open) and closes on success or
// re-opens with a doubled cooldown on failure. All methods are safe for
// concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    State
	failures int
	cooldown time.Duration
	probeAt  time.Time
	trips    int64
}

// NewBreaker creates a breaker with the given configuration.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = time.Second
	}
	if cfg.MaxCooldown <= 0 {
		cfg.MaxCooldown = 30 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{cfg: cfg, cooldown: cfg.Cooldown}
}

// Allow reports whether a call may proceed now. When the breaker is open and
// the cooldown has elapsed it admits exactly one caller as the half-open
// probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if !b.cfg.Now().Before(b.probeAt) {
			b.state = HalfOpen
			return true
		}
		return false
	default: // HalfOpen: a probe is already in flight
		return false
	}
}

// Success records a successful call, closing the breaker and resetting the
// failure count and cooldown.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.failures = 0
	b.cooldown = b.cfg.Cooldown
}

// Failure records a failed call: in the closed state it counts toward the
// trip threshold; a failed half-open probe re-opens with a doubled cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	var tripped bool
	switch b.state {
	case HalfOpen:
		b.cooldown *= 2
		if b.cooldown > b.cfg.MaxCooldown {
			b.cooldown = b.cfg.MaxCooldown
		}
		b.open()
		tripped = true
	case Closed:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.open()
			tripped = true
		}
	}
	onTrip := b.cfg.OnTrip
	b.mu.Unlock()
	if tripped && onTrip != nil {
		onTrip()
	}
}

// open transitions to Open; callers hold b.mu.
func (b *Breaker) open() {
	b.state = Open
	b.failures = 0
	b.probeAt = b.cfg.Now().Add(b.cooldown)
	b.trips++
}

// State returns the breaker's current position (Open may report HalfOpen
// only after an Allow admitted the probe).
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
