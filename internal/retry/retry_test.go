package retry

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestBackoffGrowsAndCaps(t *testing.T) {
	b := &Backoff{Base: 100 * time.Millisecond, Max: 800 * time.Millisecond, Factor: 2, Jitter: -1}
	want := []time.Duration{100, 200, 400, 800, 800}
	for i, w := range want {
		got := b.Next()
		if got != w*time.Millisecond {
			t.Fatalf("attempt %d: got %v, want %v", i, got, w*time.Millisecond)
		}
	}
	b.Reset()
	if got := b.Next(); got != 100*time.Millisecond {
		t.Fatalf("after Reset: got %v, want 100ms", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := &Backoff{Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5,
		Rand: rand.New(rand.NewSource(1))}
	for i := 0; i < 100; i++ {
		b.Reset()
		d := b.Next()
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered delay %v outside [50ms,150ms]", d)
		}
	}
}

func TestBackoffDeterministicWithSeed(t *testing.T) {
	mk := func() []time.Duration {
		b := &Backoff{Base: 10 * time.Millisecond, Rand: rand.New(rand.NewSource(42))}
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = b.Next()
		}
		return out
	}
	a, c := mk(), mk()
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, a[i], c[i])
		}
	}
}

func TestDoBudget(t *testing.T) {
	calls := 0
	err := Do(context.Background(), &Backoff{Base: time.Microsecond, Jitter: -1}, 3, func() error {
		calls++
		return errors.New("boom")
	})
	if err == nil || calls != 3 {
		t.Fatalf("want 3 failed attempts and error, got calls=%d err=%v", calls, err)
	}
	calls = 0
	if err := Do(context.Background(), &Backoff{Base: time.Microsecond, Jitter: -1}, 3, func() error {
		calls++
		if calls < 2 {
			return errors.New("boom")
		}
		return nil
	}); err != nil || calls != 2 {
		t.Fatalf("want success on attempt 2, got calls=%d err=%v", calls, err)
	}
}

func TestDoContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Do(ctx, &Backoff{Base: time.Hour, Jitter: -1}, 0, func() error { return errors.New("boom") })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// fakeClock drives breaker cooldowns without sleeping.
type fakeClock struct{ now time.Time }

func (f *fakeClock) Now() time.Time          { return f.now }
func (f *fakeClock) advance(d time.Duration) { f.now = f.now.Add(d) }

func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	trips := 0
	br := NewBreaker(BreakerConfig{
		Threshold: 2, Cooldown: time.Second, MaxCooldown: 4 * time.Second,
		Now: clk.Now, OnTrip: func() { trips++ },
	})

	if !br.Allow() {
		t.Fatal("closed breaker must allow")
	}
	br.Failure()
	if br.State() != Closed {
		t.Fatal("one failure below threshold must not trip")
	}
	br.Failure()
	if br.State() != Open || trips != 1 {
		t.Fatalf("two failures must trip: state=%v trips=%d", br.State(), trips)
	}
	if br.Allow() {
		t.Fatal("open breaker within cooldown must reject")
	}

	// After the cooldown a single half-open probe is admitted.
	clk.advance(time.Second)
	if !br.Allow() {
		t.Fatal("must admit half-open probe after cooldown")
	}
	if br.Allow() {
		t.Fatal("second caller during half-open probe must be rejected")
	}

	// Failed probe re-opens with doubled cooldown.
	br.Failure()
	if br.State() != Open || trips != 2 {
		t.Fatalf("failed probe must re-open: state=%v trips=%d", br.State(), trips)
	}
	clk.advance(time.Second)
	if br.Allow() {
		t.Fatal("doubled cooldown: 1s must not be enough")
	}
	clk.advance(time.Second)
	if !br.Allow() {
		t.Fatal("doubled cooldown elapsed: probe must be admitted")
	}

	// Successful probe closes and resets failure count and cooldown.
	br.Success()
	if br.State() != Closed {
		t.Fatal("successful probe must close the breaker")
	}
	br.Failure()
	if br.State() != Closed {
		t.Fatal("failure count must reset on success")
	}
	if got := br.Trips(); got != 2 {
		t.Fatalf("Trips() = %d, want 2", got)
	}
}

func TestBreakerCooldownCap(t *testing.T) {
	clk := &fakeClock{now: time.Unix(0, 0)}
	br := NewBreaker(BreakerConfig{Threshold: 1, Cooldown: time.Second, MaxCooldown: 2 * time.Second, Now: clk.Now})
	br.Failure() // trip
	for i := 0; i < 5; i++ {
		clk.advance(time.Hour)
		if !br.Allow() {
			t.Fatalf("round %d: probe not admitted", i)
		}
		br.Failure() // probe fails, cooldown doubles (capped)
	}
	clk.advance(2 * time.Second)
	if !br.Allow() {
		t.Fatal("cooldown must be capped at MaxCooldown")
	}
}
