package analysis

import (
	"fmt"
	"math"
	"testing"
)

func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{0, 1, 10, 500, 5_000, 50_000, 500_000} {
		h := NewHLL()
		for i := 0; i < n; i++ {
			h.Add(fmt.Sprintf("guid-%d", i))
		}
		got := h.Estimate()
		if n == 0 {
			if got != 0 {
				t.Errorf("empty sketch estimates %.1f, want 0", got)
			}
			continue
		}
		relErr := math.Abs(got-float64(n)) / float64(n)
		if relErr > 0.02 {
			t.Errorf("n=%d: estimate %.0f, relative error %.3f > 2%%", n, got, relErr)
		}
	}
}

func TestHLLDuplicatesDoNotInflate(t *testing.T) {
	h := NewHLL()
	for round := 0; round < 10; round++ {
		for i := 0; i < 1000; i++ {
			h.Add(fmt.Sprintf("guid-%d", i))
		}
	}
	got := h.Estimate()
	if math.Abs(got-1000)/1000 > 0.02 {
		t.Errorf("10x-repeated 1000 elements estimate %.0f, want ~1000", got)
	}
}

func TestHLLMergeIsUnion(t *testing.T) {
	a, b := NewHLL(), NewHLL()
	for i := 0; i < 2000; i++ {
		a.Add(fmt.Sprintf("guid-%d", i))
	}
	// b overlaps a on [1000, 2000) and adds [2000, 3000).
	for i := 1000; i < 3000; i++ {
		b.Add(fmt.Sprintf("guid-%d", i))
	}
	a.Merge(b)
	got := a.Estimate()
	if math.Abs(got-3000)/3000 > 0.02 {
		t.Errorf("union estimate %.0f, want ~3000 (overlap must not double-count)", got)
	}
}

func TestHLLSerializationRoundTrip(t *testing.T) {
	h := NewHLL()
	for i := 0; i < 1234; i++ {
		h.Add(fmt.Sprintf("guid-%d", i))
	}
	r, err := HLLFromBytes(h.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if r.Estimate() != h.Estimate() {
		t.Errorf("round-trip estimate %.2f != original %.2f", r.Estimate(), h.Estimate())
	}
	if _, err := HLLFromBytes(make([]byte, 7)); err == nil {
		t.Error("HLLFromBytes accepted a bad register count")
	}
	empty, err := HLLFromBytes(nil)
	if err != nil || empty.Estimate() != 0 {
		t.Errorf("nil bytes: sketch=%v err=%v, want empty sketch", empty, err)
	}
}
