package analysis

import (
	"encoding/json"
	"strings"
	"testing"
)

func offlineFixture() []OfflineDownload {
	return []OfflineDownload{
		{GUID: "g1", Country: "US", ASN: 1, URLHash: "a", P2PEnabled: true,
			StartMs: 0, EndMs: 1000, BytesInfra: 250_000, BytesPeers: 750_000,
			Outcome: "completed",
			FromPeers: []OfflineContribution{
				{GUID: "g2", Country: "US", ASN: 1, Bytes: 250_000},
				{GUID: "g3", Country: "DE", ASN: 2, Bytes: 500_000},
			}},
		{GUID: "g2", Country: "DE", ASN: 2, URLHash: "a", P2PEnabled: true,
			StartMs: 0, EndMs: 2000, BytesInfra: 1_000_000,
			Outcome: "aborted"},
		{GUID: "g3", Country: "US", ASN: 1, URLHash: "b", P2PEnabled: false,
			StartMs: 0, EndMs: 500, BytesInfra: 500_000,
			Outcome: "completed"},
		{GUID: "g4", Country: "US", ASN: 3, URLHash: "a", P2PEnabled: false,
			StartMs: 0, EndMs: 100, BytesInfra: 1,
			Outcome: "failed-other"},
	}
}

func TestReadDownloadsJSONL(t *testing.T) {
	var sb strings.Builder
	enc := json.NewEncoder(&sb)
	for _, d := range offlineFixture() {
		if err := enc.Encode(d); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadDownloadsJSONL(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d records", len(got))
	}
	if got[0].FromPeers[1].Country != "DE" {
		t.Error("nested contribution lost")
	}
	if _, err := ReadDownloadsJSONL(strings.NewReader("{bad json\n")); err == nil {
		t.Error("malformed line accepted")
	}
}

func TestSummarizeOffline(t *testing.T) {
	s := SummarizeOffline(offlineFixture())
	if s.Downloads != 4 || s.DistinctGUIDs != 4 || s.DistinctURLs != 2 {
		t.Errorf("counts: %+v", s)
	}
	if s.Countries != 2 || s.ASes != 3 {
		t.Errorf("geo counts: %d countries, %d ASes", s.Countries, s.ASes)
	}
	// One of two p2p downloads completed; one of two infra-only did.
	if s.CompletionP2PPct != 50 {
		t.Errorf("p2p completion %.1f", s.CompletionP2PPct)
	}
	if s.CompletionInfraPct != 50 {
		t.Errorf("infra completion %.1f", s.CompletionInfraPct)
	}
	if s.AbortP2PPct != 50 || s.AbortInfraPct != 0 {
		t.Errorf("aborts %.1f/%.1f", s.AbortInfraPct, s.AbortP2PPct)
	}
	// d1: eff 75%; d2: 0% -> mean 37.5, aggregate 750k/2M=37.5.
	if s.MeanPeerEfficiencyPct != 37.5 {
		t.Errorf("mean efficiency %.2f", s.MeanPeerEfficiencyPct)
	}
	if s.AggregatePeerEfficiencyPct != 37.5 {
		t.Errorf("aggregate efficiency %.2f", s.AggregatePeerEfficiencyPct)
	}
	// Intra-AS: 250k of 750k p2p bytes.
	if s.IntraASPct < 33.2 || s.IntraASPct > 33.5 {
		t.Errorf("intra-AS %.2f", s.IntraASPct)
	}
	if s.TopObjectCount != 3 {
		t.Errorf("top object %d", s.TopObjectCount)
	}
	out := s.Render()
	for _, want := range []string{"downloads: 4", "peer efficiency", "intra-AS"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
