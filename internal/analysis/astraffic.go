package analysis

import (
	"sort"

	"netsession/internal/geo"
)

// ASTraffic is the AS-level p2p traffic analysis behind §6.1 and Figures
// 9–11: the flow matrix of content bytes between serving and downloading
// ASes, excluding infrastructure bytes (which an infrastructure-only CDN
// would send anyway).
type ASTraffic struct {
	// TotalP2PBytes is all peer-to-peer content bytes observed.
	TotalP2PBytes int64
	// IntraASBytes stayed inside one AS (§6.1: 18% in the paper).
	IntraASBytes int64
	// Up and Down are per-AS inter-AS bytes sent and received.
	Up   map[geo.ASN]int64
	Down map[geo.ASN]int64
	// Pair[a][b] is inter-AS bytes from a to b.
	Pair map[geo.ASN]map[geo.ASN]int64
	// IPs counts distinct peer IPs observed per AS (Figure 9c).
	IPs map[geo.ASN]int
	// Heavy marks the top uploading ASes jointly carrying ≈90% of inter-AS
	// p2p bytes (the paper's "heavy uploaders": 2% of ASes).
	Heavy map[geo.ASN]bool
	// ASesWithPeers is the number of ASes whose peers participated.
	ASesWithPeers int
}

// ComputeASTraffic builds the matrix from the per-serving-peer byte
// attributions in the download records.
func ComputeASTraffic(in *Input) *ASTraffic {
	t := &ASTraffic{
		Up:   make(map[geo.ASN]int64),
		Down: make(map[geo.ASN]int64),
		Pair: make(map[geo.ASN]map[geo.ASN]int64),
		IPs:  make(map[geo.ASN]int),
	}
	ipSeen := make(map[string]bool)
	noteIP := func(rec geo.Record) {
		key := rec.IP.String()
		if !ipSeen[key] {
			ipSeen[key] = true
			t.IPs[rec.ASN]++
		}
	}
	participated := make(map[geo.ASN]bool)
	for i := range in.Log.Downloads {
		d := &in.Log.Downloads[i]
		dst, ok := in.lookup(d.IP)
		if !ok {
			continue
		}
		if len(d.FromPeers) > 0 {
			noteIP(dst)
			participated[dst.ASN] = true
		}
		for _, pc := range d.FromPeers {
			src, ok := in.lookup(pc.IP)
			if !ok {
				continue
			}
			noteIP(src)
			participated[src.ASN] = true
			t.TotalP2PBytes += pc.Bytes
			if src.ASN == dst.ASN {
				t.IntraASBytes += pc.Bytes
				continue
			}
			t.Up[src.ASN] += pc.Bytes
			t.Down[dst.ASN] += pc.Bytes
			m := t.Pair[src.ASN]
			if m == nil {
				m = make(map[geo.ASN]int64)
				t.Pair[src.ASN] = m
			}
			m[dst.ASN] += pc.Bytes
		}
	}
	t.ASesWithPeers = len(participated)
	t.markHeavy()
	return t
}

// markHeavy labels the smallest set of top uploaders that covers 90% of
// inter-AS p2p bytes.
func (t *ASTraffic) markHeavy() {
	t.Heavy = make(map[geo.ASN]bool)
	type kv struct {
		as    geo.ASN
		bytes int64
	}
	var order []kv
	var total int64
	for as, b := range t.Up {
		order = append(order, kv{as, b})
		total += b
	}
	sort.Slice(order, func(i, j int) bool { return order[i].bytes > order[j].bytes })
	var cum int64
	for _, e := range order {
		if total > 0 && float64(cum) >= 0.9*float64(total) {
			break
		}
		t.Heavy[e.as] = true
		cum += e.bytes
	}
}

// IntraASFraction returns the share of p2p bytes that never crossed an AS
// boundary.
func (t *ASTraffic) IntraASFraction() float64 {
	if t.TotalP2PBytes == 0 {
		return 0
	}
	return float64(t.IntraASBytes) / float64(t.TotalP2PBytes)
}

// Figure9a is the CDF over ASes of inter-AS bytes uploaded.
type Figure9a struct {
	Points []Point // x: bytes, y: fraction of ASes (%)
	// PctBelow is the fraction of participating ASes uploading less than
	// the paper's 163 GB marker.
	ASes int
}

// ComputeFigure9a builds the per-AS upload CDF, including participating
// ASes that uploaded nothing.
func (t *ASTraffic) ComputeFigure9a() Figure9a {
	var ups []float64
	for as := range t.Up {
		ups = append(ups, float64(t.Up[as]))
	}
	zeros := t.ASesWithPeers - len(ups)
	for i := 0; i < zeros; i++ {
		ups = append(ups, 0)
	}
	xs := LogSpace(1e3, 1e15, 25)
	return Figure9a{Points: NewCDF(ups).Points(xs), ASes: len(ups)}
}

// Figure9b is the concentration curve: cumulative share of total inter-AS
// uploads contributed by ASes uploading less than x bytes.
type Figure9b struct {
	Points []Point
	// HeavyASes and HeavyShare summarize the skew (paper: 2% of ASes send
	// 90% of bytes).
	HeavyASes     int
	LightSharePct float64
}

// ComputeFigure9b builds the concentration curve.
func (t *ASTraffic) ComputeFigure9b() Figure9b {
	type kv struct{ b int64 }
	var list []int64
	var total int64
	for _, b := range t.Up {
		list = append(list, b)
		total += b
	}
	sort.Slice(list, func(i, j int) bool { return list[i] < list[j] })
	xs := LogSpace(1e3, 1e15, 25)
	var out Figure9b
	ci := 0
	var cum int64
	for _, x := range xs {
		for ci < len(list) && float64(list[ci]) <= x {
			cum += list[ci]
			ci++
		}
		y := 0.0
		if total > 0 {
			y = 100 * float64(cum) / float64(total)
		}
		out.Points = append(out.Points, Point{X: x, Y: y})
	}
	out.HeavyASes = len(t.Heavy)
	// Share contributed by everything outside the heavy set.
	var heavyBytes int64
	for as := range t.Heavy {
		heavyBytes += t.Up[as]
	}
	if total > 0 {
		out.LightSharePct = 100 * float64(total-heavyBytes) / float64(total)
	}
	return out
}

// Figure9c compares distinct-IP counts of light and heavy uploader ASes.
type Figure9c struct {
	Light []Point // CDF over ASes: x = #IPs, y = % of ASes
	Heavy []Point
	// Medians for the headline: heavy uploaders simply contain more peers.
	MedianLightIPs float64
	MedianHeavyIPs float64
}

// ComputeFigure9c builds the per-class IP-count CDFs.
func (t *ASTraffic) ComputeFigure9c() Figure9c {
	var light, heavy []float64
	for as, n := range t.IPs {
		if t.Heavy[as] {
			heavy = append(heavy, float64(n))
		} else {
			light = append(light, float64(n))
		}
	}
	xs := LogSpace(1, 1e7, 22)
	lc, hc := NewCDF(light), NewCDF(heavy)
	return Figure9c{
		Light:          lc.Points(xs),
		Heavy:          hc.Points(xs),
		MedianLightIPs: lc.Quantile(0.5),
		MedianHeavyIPs: hc.Quantile(0.5),
	}
}

// Figure10Point is one AS in the upload-vs-download scatter.
type Figure10Point struct {
	AS    geo.ASN
	Up    int64
	Down  int64
	Heavy bool
}

// Figure10 is the per-AS traffic balance scatter.
type Figure10 struct {
	Points []Figure10Point
	// HeavyMedianRatio is the median up/down ratio among heavy uploaders;
	// the paper finds heavy uploaders roughly balanced.
	HeavyMedianRatio float64
}

// ComputeFigure10 builds the scatter.
func (t *ASTraffic) ComputeFigure10() Figure10 {
	seen := make(map[geo.ASN]bool)
	var out Figure10
	add := func(as geo.ASN) {
		if seen[as] {
			return
		}
		seen[as] = true
		out.Points = append(out.Points, Figure10Point{
			AS: as, Up: t.Up[as], Down: t.Down[as], Heavy: t.Heavy[as],
		})
	}
	for as := range t.Up {
		add(as)
	}
	for as := range t.Down {
		add(as)
	}
	var ratios []float64
	for _, p := range out.Points {
		if p.Heavy && p.Down > 0 {
			ratios = append(ratios, float64(p.Up)/float64(p.Down))
		}
	}
	out.HeavyMedianRatio = Percentile(ratios, 50)
	sort.Slice(out.Points, func(i, j int) bool { return out.Points[i].AS < out.Points[j].AS })
	return out
}

// Figure11Pair is one heavy-uploader AS pair's bidirectional traffic.
type Figure11Pair struct {
	A, B     geo.ASN
	AtoB     int64
	BtoA     int64
	Adjacent bool
}

// Figure11 is the pairwise balance among heavy uploaders.
type Figure11 struct {
	Pairs []Figure11Pair
	// MedianRatio is the median max/min ratio across pairs with traffic in
	// both directions (1 = perfectly balanced).
	MedianRatio float64
	// PctDirectBytes is the share of heavy-pair bytes exchanged between
	// directly connected ASes (paper estimates ≈35% via CAIDA).
	PctDirectBytes float64
}

// ComputeFigure11 builds pairwise balance among heavy uploaders, using the
// synthetic AS adjacency as the CAIDA substitute.
func (t *ASTraffic) ComputeFigure11(atlas *geo.Atlas) Figure11 {
	var out Figure11
	var ratios []float64
	var direct, total int64
	for a, row := range t.Pair {
		if !t.Heavy[a] {
			continue
		}
		for b, ab := range row {
			if !t.Heavy[b] || a >= b {
				continue
			}
			ba := int64(0)
			if rev := t.Pair[b]; rev != nil {
				ba = rev[a]
			}
			adj := atlas.Adjacent(a, b)
			out.Pairs = append(out.Pairs, Figure11Pair{A: a, B: b, AtoB: ab, BtoA: ba, Adjacent: adj})
			total += ab + ba
			if adj {
				direct += ab + ba
			}
			if ab > 0 && ba > 0 {
				r := float64(ab) / float64(ba)
				if r < 1 {
					r = 1 / r
				}
				ratios = append(ratios, r)
			}
		}
	}
	out.MedianRatio = Percentile(ratios, 50)
	if total > 0 {
		out.PctDirectBytes = 100 * float64(direct) / float64(total)
	}
	sort.Slice(out.Pairs, func(i, j int) bool {
		return out.Pairs[i].AtoB+out.Pairs[i].BtoA > out.Pairs[j].AtoB+out.Pairs[j].BtoA
	})
	return out
}
