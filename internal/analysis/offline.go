package analysis

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strings"

	"netsession/internal/accounting"
)

// The offline path analyzes exported JSON-lines logs without the generating
// atlas: every record carries its own geolocation fields, the way the
// paper's anonymized data set bundled EdgeScape annotations (§4.1). This is
// what `netsession-sim -out` writes and `netsession-analyze` reads.

// OfflineDownload is one exported download record.
type OfflineDownload struct {
	GUID       string                `json:"guid"`
	IP         string                `json:"ip"`
	Country    string                `json:"country"`
	ASN        uint32                `json:"asn"`
	Region     string                `json:"region,omitempty"`
	Object     string                `json:"object"`
	URLHash    string                `json:"urlHash"`
	CP         uint32                `json:"cp"`
	Size       int64                 `json:"size"`
	P2PEnabled bool                  `json:"p2pEnabled"`
	StartMs    int64                 `json:"startMs"`
	EndMs      int64                 `json:"endMs"`
	BytesInfra int64                 `json:"bytesInfra"`
	BytesPeers int64                 `json:"bytesPeers"`
	Outcome    string                `json:"outcome"`
	Peers      int                   `json:"peersReturned"`
	FromPeers  []OfflineContribution `json:"fromPeers,omitempty"`
	Stream     *OfflineStream        `json:"stream,omitempty"`
}

// OfflineStream is the streaming sub-record of a deadline-driven download:
// identical fields whether the record came from a live peer's report or
// the simulator, so streamed and simulated logs are indistinguishable to
// every analysis below.
type OfflineStream struct {
	BitrateBps      int64 `json:"bitrateBps"`
	StartupDelayMs  int64 `json:"startupDelayMs"`
	RebufferCount   int64 `json:"rebufferCount"`
	RebufferMs      int64 `json:"rebufferMs"`
	DeadlineMisses  int64 `json:"deadlineMisses"`
	PiecesPlayed    int64 `json:"piecesPlayed"`
	PiecesTotal     int64 `json:"piecesTotal"`
	EdgeRescueBytes int64 `json:"edgeRescueBytes"`
}

// OfflineContribution attributes bytes to one serving peer.
type OfflineContribution struct {
	GUID    string `json:"guid"`
	Country string `json:"country"`
	ASN     uint32 `json:"asn"`
	Region  string `json:"region,omitempty"`
	Bytes   int64  `json:"bytes"`
}

// GeoTag is the geolocation annotation attached to a logged IP: the
// EdgeScape-style fields the paper's anonymized data set bundles with every
// record (§4.1). Region is the control plane's network region name; it is
// carried in the record because it cannot be derived from the country alone
// (large countries span several regions) and the offline analyses must not
// need the generating atlas.
type GeoTag struct {
	Country string
	ASN     uint32
	Region  string
}

// GeoLookup annotates an IP; it may return a zero tag for unknown addresses.
type GeoLookup func(ip netip.Addr) GeoTag

// OfflineFromRecord converts one accepted accounting record into the
// self-contained offline schema, annotating geography through lookup (nil
// lookup leaves Country/ASN/Region zero). The simulator's log exporter and
// the control plane's segment store both go through this, so live-cluster and
// simulated segment files are byte-compatible inputs to the analyses.
func OfflineFromRecord(d *accounting.DownloadRecord, lookup GeoLookup) OfflineDownload {
	if lookup == nil {
		lookup = func(netip.Addr) GeoTag { return GeoTag{} }
	}
	tag := lookup(d.IP)
	out := OfflineDownload{
		GUID: d.GUID.String(), IP: d.IP.String(),
		Country: tag.Country, ASN: tag.ASN, Region: tag.Region,
		Object:  d.Object.String(),
		URLHash: d.URLHash, CP: uint32(d.CP), Size: d.Size,
		P2PEnabled: d.P2PEnabled, StartMs: d.StartMs, EndMs: d.EndMs,
		BytesInfra: d.BytesInfra, BytesPeers: d.BytesPeers,
		Outcome: d.Outcome.String(), Peers: d.PeersReturned,
	}
	for _, pc := range d.FromPeers {
		pt := lookup(pc.IP)
		out.FromPeers = append(out.FromPeers, OfflineContribution{
			GUID: pc.GUID.String(), Country: pt.Country, ASN: pt.ASN,
			Region: pt.Region, Bytes: pc.Bytes,
		})
	}
	if d.Stream != nil {
		out.Stream = &OfflineStream{
			BitrateBps:      d.Stream.BitrateBps,
			StartupDelayMs:  d.Stream.StartupDelayMs,
			RebufferCount:   d.Stream.RebufferCount,
			RebufferMs:      d.Stream.RebufferMs,
			DeadlineMisses:  d.Stream.DeadlineMisses,
			PiecesPlayed:    d.Stream.PiecesPlayed,
			PiecesTotal:     d.Stream.PiecesTotal,
			EdgeRescueBytes: d.Stream.EdgeRescueBytes,
		}
	}
	return out
}

// ReadDownloadsJSONL parses an exported downloads file.
func ReadDownloadsJSONL(r io.Reader) ([]OfflineDownload, error) {
	var out []OfflineDownload
	err := ScanDownloadsJSONL(r, func(d *OfflineDownload) error {
		out = append(out, *d)
		return nil
	})
	return out, err
}

// ScanDownloadsJSONL streams an exported downloads file through fn one
// record at a time — the jsonl equivalent of the segment store's streaming
// readers, so a multi-gigabyte export analyzes without materializing.
// Returning an error from fn stops the scan.
func ScanDownloadsJSONL(r io.Reader, fn func(*OfflineDownload) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var d OfflineDownload
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			return fmt.Errorf("analysis: downloads line %d: %w", line, err)
		}
		if err := fn(&d); err != nil {
			return err
		}
	}
	return sc.Err()
}

// OfflineSummary is the standalone trace analysis: the subset of the
// paper's quantities computable from the download log alone.
type OfflineSummary struct {
	Downloads     int
	DistinctGUIDs int
	DistinctURLs  int
	Countries     int
	ASes          int

	CompletionInfraPct float64
	CompletionP2PPct   float64
	AbortInfraPct      float64
	AbortP2PPct        float64

	PctBytesP2PFiles           float64
	MeanPeerEfficiencyPct      float64
	AggregatePeerEfficiencyPct float64

	MedianSpeedEdgeMbps float64
	MedianSpeedP2PMbps  float64

	IntraASPct     float64
	HeavyASes      int
	HeavySharePct  float64
	TopObjectCount int
	ZipfExponent   float64

	// Streaming-delivery aggregates over records carrying a stream
	// sub-record; all zero when the log has no streams.
	StreamingDownloads    int
	StreamStartupMeanMs   float64
	StreamRebufferEvents  int64
	StreamRebufferMs      int64
	StreamDeadlineMissPct float64 // misses per played piece
	StreamEdgeRescueBytes int64
}

// OfflineAccumulator computes an OfflineSummary one record at a time, so the
// analyzer can stream a rotated segment store without materializing the whole
// download set (the ROADMAP's billion-entry target). The arithmetic is
// record-ordered exactly like the original batch pass, so a streamed summary
// is bit-identical to SummarizeOffline over the same records in the same
// order. State grows with the number of *distinct* GUIDs/URLs/ASes and with
// one float per completed download (the speed medians) — a large constant
// factor below holding the decoded records themselves; the fully
// bounded-memory pass is StreamingSummarizer.
type OfflineAccumulator struct {
	downloads int
	guids     map[string]bool
	urls      map[string]bool
	countries map[string]bool
	ases      map[uint32]bool

	nInfra, nP2P, doneInfra, doneP2P, abInfra, abP2P int
	bytesAll, bytesP2P, peerBytes, p2pTotal          float64
	effSum                                           float64
	effN                                             int
	speedEdge, speedP2P                              []float64
	intra, totalP2P                                  int64
	perASUp                                          map[uint32]int64
	perURL                                           map[string]int

	// Streaming tallies: plain integer sums, so the streaming summarizer
	// reproduces them exactly (the PR-6 equivalence contract).
	streams           int
	streamStartupSum  int64
	streamRebufCnt    int64
	streamRebufMs     int64
	streamMisses      int64
	streamPlayed      int64
	streamRescueBytes int64
}

// NewOfflineAccumulator creates an empty accumulator.
func NewOfflineAccumulator() *OfflineAccumulator {
	return &OfflineAccumulator{
		guids:     map[string]bool{},
		urls:      map[string]bool{},
		countries: map[string]bool{},
		ases:      map[uint32]bool{},
		perASUp:   map[uint32]int64{},
		perURL:    map[string]int{},
	}
}

// Add folds one download record into the summary state.
func (a *OfflineAccumulator) Add(d *OfflineDownload) {
	a.downloads++
	a.guids[d.GUID] = true
	a.urls[d.URLHash] = true
	a.countries[d.Country] = true
	a.ases[d.ASN] = true
	a.perURL[d.URLHash]++
	total := d.BytesInfra + d.BytesPeers
	a.bytesAll += float64(total)
	if d.P2PEnabled {
		a.nP2P++
		a.bytesP2P += float64(total)
		a.peerBytes += float64(d.BytesPeers)
		a.p2pTotal += float64(total)
		if total > 0 {
			a.effSum += 100 * float64(d.BytesPeers) / float64(total)
			a.effN++
		}
	} else {
		a.nInfra++
	}
	switch d.Outcome {
	case "completed":
		if d.P2PEnabled {
			a.doneP2P++
		} else {
			a.doneInfra++
		}
		if dur := d.EndMs - d.StartMs; dur > 0 && total > 0 {
			mbps := float64(total) * 8 / float64(dur) / 1000
			if d.BytesPeers == 0 {
				a.speedEdge = append(a.speedEdge, mbps)
			} else if float64(d.BytesPeers) >= 0.5*float64(total) {
				a.speedP2P = append(a.speedP2P, mbps)
			}
		}
	case "aborted":
		if d.P2PEnabled {
			a.abP2P++
		} else {
			a.abInfra++
		}
	}
	for _, pc := range d.FromPeers {
		a.totalP2P += pc.Bytes
		if pc.ASN == d.ASN {
			a.intra += pc.Bytes
		} else {
			a.perASUp[pc.ASN] += pc.Bytes
		}
	}
	if st := d.Stream; st != nil {
		a.streams++
		a.streamStartupSum += st.StartupDelayMs
		a.streamRebufCnt += st.RebufferCount
		a.streamRebufMs += st.RebufferMs
		a.streamMisses += st.DeadlineMisses
		a.streamPlayed += st.PiecesPlayed
		a.streamRescueBytes += st.EdgeRescueBytes
	}
}

// Records returns how many downloads have been added.
func (a *OfflineAccumulator) Records() int { return a.downloads }

// Merge folds another accumulator's state into this one, as if its records
// had been added here. Count-, set- and sort-derived quantities (distinct
// counts, medians, heavy-uploader cut, Zipf fit) are exact — they depend
// only on the combined multiset — while float sums may differ from a
// single-accumulator pass in the last bits, since addition order changes.
// This is what lets a sharded parallel pass over a segment store reduce to
// one summary.
func (a *OfflineAccumulator) Merge(o *OfflineAccumulator) {
	a.downloads += o.downloads
	for k := range o.guids {
		a.guids[k] = true
	}
	for k := range o.urls {
		a.urls[k] = true
	}
	for k := range o.countries {
		a.countries[k] = true
	}
	for k := range o.ases {
		a.ases[k] = true
	}
	a.nInfra += o.nInfra
	a.nP2P += o.nP2P
	a.doneInfra += o.doneInfra
	a.doneP2P += o.doneP2P
	a.abInfra += o.abInfra
	a.abP2P += o.abP2P
	a.bytesAll += o.bytesAll
	a.bytesP2P += o.bytesP2P
	a.peerBytes += o.peerBytes
	a.p2pTotal += o.p2pTotal
	a.effSum += o.effSum
	a.effN += o.effN
	a.speedEdge = append(a.speedEdge, o.speedEdge...)
	a.speedP2P = append(a.speedP2P, o.speedP2P...)
	a.intra += o.intra
	a.totalP2P += o.totalP2P
	for asn, b := range o.perASUp {
		a.perASUp[asn] += b
	}
	for u, c := range o.perURL {
		a.perURL[u] += c
	}
	a.streams += o.streams
	a.streamStartupSum += o.streamStartupSum
	a.streamRebufCnt += o.streamRebufCnt
	a.streamRebufMs += o.streamRebufMs
	a.streamMisses += o.streamMisses
	a.streamPlayed += o.streamPlayed
	a.streamRescueBytes += o.streamRescueBytes
}

// Summary derives the summary from the accumulated state. It may be called
// repeatedly; Add may continue afterwards.
func (a *OfflineAccumulator) Summary() OfflineSummary {
	var s OfflineSummary
	s.Downloads = a.downloads
	s.DistinctGUIDs = len(a.guids)
	s.DistinctURLs = len(a.urls)
	s.Countries = len(a.countries)
	s.ASes = len(a.ases)
	pct := func(n, d int) float64 {
		if d == 0 {
			return 0
		}
		return 100 * float64(n) / float64(d)
	}
	s.CompletionInfraPct = pct(a.doneInfra, a.nInfra)
	s.CompletionP2PPct = pct(a.doneP2P, a.nP2P)
	s.AbortInfraPct = pct(a.abInfra, a.nInfra)
	s.AbortP2PPct = pct(a.abP2P, a.nP2P)
	if a.bytesAll > 0 {
		s.PctBytesP2PFiles = 100 * a.bytesP2P / a.bytesAll
	}
	if a.effN > 0 {
		s.MeanPeerEfficiencyPct = a.effSum / float64(a.effN)
	}
	if a.p2pTotal > 0 {
		s.AggregatePeerEfficiencyPct = 100 * a.peerBytes / a.p2pTotal
	}
	s.MedianSpeedEdgeMbps = Percentile(a.speedEdge, 50)
	s.MedianSpeedP2PMbps = Percentile(a.speedP2P, 50)
	if t := a.intra + sumVals(a.perASUp); t > 0 {
		s.IntraASPct = 100 * float64(a.intra) / float64(t)
	}
	s.HeavyASes, s.HeavySharePct = heavyUploaders(a.perASUp)
	// Popularity head + slope.
	counts := make([]int, 0, len(a.perURL))
	for _, c := range a.perURL {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	if len(counts) > 0 {
		s.TopObjectCount = counts[0]
	}
	s.ZipfExponent = Figure3b{Counts: counts}.PowerLawSlope()
	s.StreamingDownloads = a.streams
	if a.streams > 0 {
		s.StreamStartupMeanMs = float64(a.streamStartupSum) / float64(a.streams)
	}
	s.StreamRebufferEvents = a.streamRebufCnt
	s.StreamRebufferMs = a.streamRebufMs
	if a.streamPlayed > 0 {
		s.StreamDeadlineMissPct = 100 * float64(a.streamMisses) / float64(a.streamPlayed)
	}
	s.StreamEdgeRescueBytes = a.streamRescueBytes
	return s
}

// heavyUploaders counts the ASes covering 90% of inter-AS upload bytes and
// the share they carry; shared by the offline and streaming summaries so the
// equivalence contract holds by construction.
func heavyUploaders(perASUp map[uint32]int64) (heavy int, sharePct float64) {
	var ups []int64
	var upTotal int64
	for _, b := range perASUp {
		ups = append(ups, b)
		upTotal += b
	}
	sort.Slice(ups, func(i, j int) bool { return ups[i] > ups[j] })
	var cum int64
	for _, b := range ups {
		if upTotal > 0 && float64(cum) >= 0.9*float64(upTotal) {
			break
		}
		heavy++
		cum += b
	}
	if upTotal > 0 {
		sharePct = 100 * float64(cum) / float64(upTotal)
	}
	return heavy, sharePct
}

// SummarizeOffline computes the summary of a fully materialized log set.
func SummarizeOffline(dls []OfflineDownload) OfflineSummary {
	acc := NewOfflineAccumulator()
	for i := range dls {
		acc.Add(&dls[i])
	}
	return acc.Summary()
}

func sumVals(m map[uint32]int64) int64 {
	var t int64
	for _, v := range m {
		t += v
	}
	return t
}

// Render prints the summary as text.
func (s OfflineSummary) Render() string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	w("downloads: %d by %d GUIDs over %d objects (%d countries, %d ASes)",
		s.Downloads, s.DistinctGUIDs, s.DistinctURLs, s.Countries, s.ASes)
	w("completion: infra-only %.1f%%, peer-assisted %.1f%% (paper: 94/92)",
		s.CompletionInfraPct, s.CompletionP2PPct)
	w("aborted:    infra-only %.1f%%, peer-assisted %.1f%% (paper: 3/8)",
		s.AbortInfraPct, s.AbortP2PPct)
	w("p2p-enabled files carry %.1f%% of bytes (paper: 57.4%%)", s.PctBytesP2PFiles)
	w("peer efficiency: mean %.1f%%, byte-weighted %.1f%% (paper mean: 71.4%%)",
		s.MeanPeerEfficiencyPct, s.AggregatePeerEfficiencyPct)
	w("median speed: edge-only %.2f Mbps, >50%%-p2p %.2f Mbps", s.MedianSpeedEdgeMbps, s.MedianSpeedP2PMbps)
	w("intra-AS p2p share %.1f%%; heavy uploaders: %d ASes carry %.0f%% of inter-AS bytes",
		s.IntraASPct, s.HeavyASes, s.HeavySharePct)
	w("popularity: top object %d downloads, fitted Zipf exponent %.2f",
		s.TopObjectCount, s.ZipfExponent)
	if s.StreamingDownloads > 0 {
		w("streaming: %d sessions, mean startup %.0fms, %d rebuffers (%dms paused), "+
			"deadline misses %.2f%% of played pieces, edge rescued %d urgent bytes",
			s.StreamingDownloads, s.StreamStartupMeanMs, s.StreamRebufferEvents,
			s.StreamRebufferMs, s.StreamDeadlineMissPct, s.StreamEdgeRescueBytes)
	}
	return b.String()
}
