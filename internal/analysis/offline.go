package analysis

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"sort"
	"strings"

	"netsession/internal/accounting"
)

// The offline path analyzes exported JSON-lines logs without the generating
// atlas: every record carries its own geolocation fields, the way the
// paper's anonymized data set bundled EdgeScape annotations (§4.1). This is
// what `netsession-sim -out` writes and `netsession-analyze` reads.

// OfflineDownload is one exported download record.
type OfflineDownload struct {
	GUID       string                `json:"guid"`
	IP         string                `json:"ip"`
	Country    string                `json:"country"`
	ASN        uint32                `json:"asn"`
	Object     string                `json:"object"`
	URLHash    string                `json:"urlHash"`
	CP         uint32                `json:"cp"`
	Size       int64                 `json:"size"`
	P2PEnabled bool                  `json:"p2pEnabled"`
	StartMs    int64                 `json:"startMs"`
	EndMs      int64                 `json:"endMs"`
	BytesInfra int64                 `json:"bytesInfra"`
	BytesPeers int64                 `json:"bytesPeers"`
	Outcome    string                `json:"outcome"`
	Peers      int                   `json:"peersReturned"`
	FromPeers  []OfflineContribution `json:"fromPeers,omitempty"`
}

// OfflineContribution attributes bytes to one serving peer.
type OfflineContribution struct {
	GUID    string `json:"guid"`
	Country string `json:"country"`
	ASN     uint32 `json:"asn"`
	Bytes   int64  `json:"bytes"`
}

// GeoLookup annotates an IP with (country, ASN); it may return zero values
// for unknown addresses.
type GeoLookup func(ip netip.Addr) (country string, asn uint32)

// OfflineFromRecord converts one accepted accounting record into the
// self-contained offline schema, annotating geography through lookup (nil
// lookup leaves Country/ASN zero). The simulator's log exporter and the
// control plane's segment store both go through this, so live-cluster and
// simulated segment files are byte-compatible inputs to the analyses.
func OfflineFromRecord(d *accounting.DownloadRecord, lookup GeoLookup) OfflineDownload {
	if lookup == nil {
		lookup = func(netip.Addr) (string, uint32) { return "", 0 }
	}
	country, asn := lookup(d.IP)
	out := OfflineDownload{
		GUID: d.GUID.String(), IP: d.IP.String(),
		Country: country, ASN: asn,
		Object:  d.Object.String(),
		URLHash: d.URLHash, CP: uint32(d.CP), Size: d.Size,
		P2PEnabled: d.P2PEnabled, StartMs: d.StartMs, EndMs: d.EndMs,
		BytesInfra: d.BytesInfra, BytesPeers: d.BytesPeers,
		Outcome: d.Outcome.String(), Peers: d.PeersReturned,
	}
	for _, pc := range d.FromPeers {
		c, a := lookup(pc.IP)
		out.FromPeers = append(out.FromPeers, OfflineContribution{
			GUID: pc.GUID.String(), Country: c, ASN: a, Bytes: pc.Bytes,
		})
	}
	return out
}

// ReadDownloadsJSONL parses an exported downloads file.
func ReadDownloadsJSONL(r io.Reader) ([]OfflineDownload, error) {
	var out []OfflineDownload
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var d OfflineDownload
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			return nil, fmt.Errorf("analysis: downloads line %d: %w", line, err)
		}
		out = append(out, d)
	}
	return out, sc.Err()
}

// OfflineSummary is the standalone trace analysis: the subset of the
// paper's quantities computable from the download log alone.
type OfflineSummary struct {
	Downloads     int
	DistinctGUIDs int
	DistinctURLs  int
	Countries     int
	ASes          int

	CompletionInfraPct float64
	CompletionP2PPct   float64
	AbortInfraPct      float64
	AbortP2PPct        float64

	PctBytesP2PFiles           float64
	MeanPeerEfficiencyPct      float64
	AggregatePeerEfficiencyPct float64

	MedianSpeedEdgeMbps float64
	MedianSpeedP2PMbps  float64

	IntraASPct     float64
	HeavyASes      int
	HeavySharePct  float64
	TopObjectCount int
	ZipfExponent   float64
}

// SummarizeOffline computes the summary.
func SummarizeOffline(dls []OfflineDownload) OfflineSummary {
	var s OfflineSummary
	s.Downloads = len(dls)
	guids := map[string]bool{}
	urls := map[string]bool{}
	countries := map[string]bool{}
	ases := map[uint32]bool{}

	var nInfra, nP2P, doneInfra, doneP2P, abInfra, abP2P int
	var bytesAll, bytesP2P, peerBytes, p2pTotal float64
	var effSum float64
	var effN int
	var speedEdge, speedP2P []float64
	var intra, totalP2P int64
	perASUp := map[uint32]int64{}
	perURL := map[string]int{}
	for i := range dls {
		d := &dls[i]
		guids[d.GUID] = true
		urls[d.URLHash] = true
		countries[d.Country] = true
		ases[d.ASN] = true
		perURL[d.URLHash]++
		total := d.BytesInfra + d.BytesPeers
		bytesAll += float64(total)
		if d.P2PEnabled {
			nP2P++
			bytesP2P += float64(total)
			peerBytes += float64(d.BytesPeers)
			p2pTotal += float64(total)
			if total > 0 {
				effSum += 100 * float64(d.BytesPeers) / float64(total)
				effN++
			}
		} else {
			nInfra++
		}
		switch d.Outcome {
		case "completed":
			if d.P2PEnabled {
				doneP2P++
			} else {
				doneInfra++
			}
			if dur := d.EndMs - d.StartMs; dur > 0 && total > 0 {
				mbps := float64(total) * 8 / float64(dur) / 1000
				if d.BytesPeers == 0 {
					speedEdge = append(speedEdge, mbps)
				} else if float64(d.BytesPeers) >= 0.5*float64(total) {
					speedP2P = append(speedP2P, mbps)
				}
			}
		case "aborted":
			if d.P2PEnabled {
				abP2P++
			} else {
				abInfra++
			}
		}
		for _, pc := range d.FromPeers {
			totalP2P += pc.Bytes
			if pc.ASN == d.ASN {
				intra += pc.Bytes
			} else {
				perASUp[pc.ASN] += pc.Bytes
			}
		}
	}
	s.DistinctGUIDs = len(guids)
	s.DistinctURLs = len(urls)
	s.Countries = len(countries)
	s.ASes = len(ases)
	pct := func(a, b int) float64 {
		if b == 0 {
			return 0
		}
		return 100 * float64(a) / float64(b)
	}
	s.CompletionInfraPct = pct(doneInfra, nInfra)
	s.CompletionP2PPct = pct(doneP2P, nP2P)
	s.AbortInfraPct = pct(abInfra, nInfra)
	s.AbortP2PPct = pct(abP2P, nP2P)
	if bytesAll > 0 {
		s.PctBytesP2PFiles = 100 * bytesP2P / bytesAll
	}
	if effN > 0 {
		s.MeanPeerEfficiencyPct = effSum / float64(effN)
	}
	if p2pTotal > 0 {
		s.AggregatePeerEfficiencyPct = 100 * peerBytes / p2pTotal
	}
	s.MedianSpeedEdgeMbps = Percentile(speedEdge, 50)
	s.MedianSpeedP2PMbps = Percentile(speedP2P, 50)
	if t := intra + sumVals(perASUp); t > 0 {
		s.IntraASPct = 100 * float64(intra) / float64(t)
	}
	// Heavy uploaders covering 90% of inter-AS bytes.
	var ups []int64
	var upTotal int64
	for _, b := range perASUp {
		ups = append(ups, b)
		upTotal += b
	}
	sort.Slice(ups, func(i, j int) bool { return ups[i] > ups[j] })
	var cum int64
	for _, b := range ups {
		if upTotal > 0 && float64(cum) >= 0.9*float64(upTotal) {
			break
		}
		s.HeavyASes++
		cum += b
	}
	if upTotal > 0 {
		s.HeavySharePct = 100 * float64(cum) / float64(upTotal)
	}
	// Popularity head + slope.
	counts := make([]int, 0, len(perURL))
	for _, c := range perURL {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	if len(counts) > 0 {
		s.TopObjectCount = counts[0]
	}
	s.ZipfExponent = Figure3b{Counts: counts}.PowerLawSlope()
	return s
}

func sumVals(m map[uint32]int64) int64 {
	var t int64
	for _, v := range m {
		t += v
	}
	return t
}

// Render prints the summary as text.
func (s OfflineSummary) Render() string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	w("downloads: %d by %d GUIDs over %d objects (%d countries, %d ASes)",
		s.Downloads, s.DistinctGUIDs, s.DistinctURLs, s.Countries, s.ASes)
	w("completion: infra-only %.1f%%, peer-assisted %.1f%% (paper: 94/92)",
		s.CompletionInfraPct, s.CompletionP2PPct)
	w("aborted:    infra-only %.1f%%, peer-assisted %.1f%% (paper: 3/8)",
		s.AbortInfraPct, s.AbortP2PPct)
	w("p2p-enabled files carry %.1f%% of bytes (paper: 57.4%%)", s.PctBytesP2PFiles)
	w("peer efficiency: mean %.1f%%, byte-weighted %.1f%% (paper mean: 71.4%%)",
		s.MeanPeerEfficiencyPct, s.AggregatePeerEfficiencyPct)
	w("median speed: edge-only %.2f Mbps, >50%%-p2p %.2f Mbps", s.MedianSpeedEdgeMbps, s.MedianSpeedP2PMbps)
	w("intra-AS p2p share %.1f%%; heavy uploaders: %d ASes carry %.0f%% of inter-AS bytes",
		s.IntraASPct, s.HeavyASes, s.HeavySharePct)
	w("popularity: top object %d downloads, fitted Zipf exponent %.2f",
		s.TopObjectCount, s.ZipfExponent)
	return b.String()
}
