package analysis

import (
	"netsession/internal/id"
)

// GraphClass classifies one installation's secondary-GUID graph (paper
// Figure 12 / §6.2).
type GraphClass int

// Graph classes.
const (
	// GraphLinear is the expected chain of a healthy installation.
	GraphLinear GraphClass = iota
	// GraphShortBranch: one long branch plus a single one-vertex branch —
	// consistent with a failed software update.
	GraphShortBranch
	// GraphTwoLong: two long branches — consistent with a restored backup.
	GraphTwoLong
	// GraphManyBranches: several short or medium branches from one point —
	// consistent with re-imaging or cloning from a master image.
	GraphManyBranches
	// GraphIrregular: everything else.
	GraphIrregular
	numGraphClasses
)

func (c GraphClass) String() string {
	switch c {
	case GraphLinear:
		return "linear"
	case GraphShortBranch:
		return "one short branch"
	case GraphTwoLong:
		return "two long branches"
	case GraphManyBranches:
		return "several branches"
	case GraphIrregular:
		return "irregular"
	}
	return "?"
}

// Figure12 summarizes the graph classification.
type Figure12 struct {
	// Graphs is the number of graphs with at least three vertices.
	Graphs int
	// Count per class.
	Count [numGraphClasses]int
	// PctNonLinear is the headline (0.6% in the paper).
	PctNonLinear float64
	// PctOfNonLinear is each non-linear class's share of non-linear
	// graphs (the paper: 46.2% / 6.2% / 23.5% / rest).
	PctOfNonLinear [numGraphClasses]float64
}

// ComputeFigure12 reconstructs per-GUID secondary-GUID graphs from the
// login records and classifies their shapes: "vertices represent secondary
// GUIDs and edges connect GUIDs that follow each other in a login entry"
// (§6.2).
func ComputeFigure12(in *Input) Figure12 {
	type graph struct {
		children map[id.Secondary]map[id.Secondary]bool
		verts    map[id.Secondary]bool
	}
	graphs := make(map[id.GUID]*graph)
	for i := range in.Log.Logins {
		l := &in.Log.Logins[i]
		g := graphs[l.GUID]
		if g == nil {
			g = &graph{
				children: make(map[id.Secondary]map[id.Secondary]bool),
				verts:    make(map[id.Secondary]bool),
			}
			graphs[l.GUID] = g
		}
		w := l.Secondaries
		for k := 0; k+1 < len(w); k++ {
			child, parent := w[k], w[k+1]
			if child.IsZero() || parent.IsZero() {
				continue
			}
			g.verts[child] = true
			g.verts[parent] = true
			m := g.children[parent]
			if m == nil {
				m = make(map[id.Secondary]bool)
				g.children[parent] = m
			}
			m[child] = true
		}
	}
	var out Figure12
	for _, g := range graphs {
		if len(g.verts) < 3 {
			continue
		}
		out.Graphs++
		out.Count[classifyGraph(g.children, g.verts)]++
	}
	nonLinear := out.Graphs - out.Count[GraphLinear]
	if out.Graphs > 0 {
		out.PctNonLinear = 100 * float64(nonLinear) / float64(out.Graphs)
	}
	if nonLinear > 0 {
		for c := GraphShortBranch; c < numGraphClasses; c++ {
			out.PctOfNonLinear[c] = 100 * float64(out.Count[c]) / float64(nonLinear)
		}
	}
	return out
}

// classifyGraph labels one secondary-GUID graph.
func classifyGraph(children map[id.Secondary]map[id.Secondary]bool, verts map[id.Secondary]bool) GraphClass {
	// Parent counts detect non-tree shapes.
	parents := make(map[id.Secondary]int)
	var branchPoints []id.Secondary
	for p, cs := range children {
		if len(cs) >= 2 {
			branchPoints = append(branchPoints, p)
		}
		for c := range cs {
			parents[c]++
		}
	}
	for _, n := range parents {
		if n > 1 {
			return GraphIrregular // a vertex with two histories: not a tree
		}
	}
	switch len(branchPoints) {
	case 0:
		return GraphLinear
	case 1:
		bp := branchPoints[0]
		var lengths []int
		for c := range children[bp] {
			lengths = append(lengths, chainLen(children, c))
		}
		if len(lengths) > 2 {
			return GraphManyBranches
		}
		short := lengths[0]
		if lengths[1] < short {
			short = lengths[1]
		}
		if short <= 1 {
			return GraphShortBranch
		}
		return GraphTwoLong
	default:
		// Multiple independent fork points: a history no single clean
		// explanation (update failure, restore, re-imaging) produces.
		return GraphIrregular
	}
}

// chainLen follows a branch downward; branches below (which cannot exist
// when there is a single branch point) just take the longest path.
func chainLen(children map[id.Secondary]map[id.Secondary]bool, v id.Secondary) int {
	n := 1
	for {
		cs := children[v]
		if len(cs) == 0 {
			return n
		}
		best := 0
		var next id.Secondary
		for c := range cs {
			l := 1 // conservative: avoid deep recursion; single-point case has chains
			if l > best {
				best = l
				next = c
			}
		}
		v = next
		n++
		if n > 1_000_000 {
			return n // cycle guard; irregular graphs are caught earlier
		}
	}
}
