package analysis

import (
	"netsession/internal/geo"
	"netsession/internal/id"
	"netsession/internal/protocol"
)

// Headlines collects the scalar results quoted in the paper's running text.
type Headlines struct {
	// §5.1: "peer-to-peer downloads were enabled for only 1.7% of the
	// files, but these downloads accounted for 57.4% of the downloaded
	// bytes".
	PctFilesP2PEnabled float64
	PctBytesP2PFiles   float64
	// §5.1: "the average peer efficiency for peer-assisted downloads was
	// 71.4%" (per-download mean), plus the byte-weighted aggregate.
	MeanPeerEfficiencyPct      float64
	AggregatePeerEfficiencyPct float64

	// §5.2 outcome rates, per class (infra-only / peer-assisted).
	CompletionInfraPct float64
	CompletionP2PPct   float64
	FailSystemInfraPct float64
	FailSystemP2PPct   float64
	AbortInfraPct      float64
	AbortP2PPct        float64

	// §6.1: intra-AS share of p2p traffic (18% in the paper).
	IntraASPct float64

	// §6.2 mobility: GUIDs seen in 1 / 2 / >2 ASes; fraction of GUIDs
	// whose farthest two geolocations are within 10 km.
	Pct1AS        float64
	Pct2AS        float64
	PctMoreAS     float64
	PctWithin10Km float64
	// NewConnectionsPerMinute is the control-plane login churn.
	NewConnectionsPerMinute float64
}

// ComputeHeadlines derives the scalar summary from the logs.
func ComputeHeadlines(in *Input, traceDays int) Headlines {
	var h Headlines

	// Catalog policy share.
	p2pFiles := 0
	for _, f := range in.Catalog.Files {
		if f.Object.P2PEnabled {
			p2pFiles++
		}
	}
	if n := len(in.Catalog.Files); n > 0 {
		h.PctFilesP2PEnabled = 100 * float64(p2pFiles) / float64(n)
	}

	var bytesP2PFiles, bytesAll float64
	var effSum float64
	var effN int
	var peerBytes, p2pTotalBytes float64
	var nInfra, nP2P, doneInfra, doneP2P, sysInfra, sysP2P, abInfra, abP2P int
	for i := range in.Log.Downloads {
		d := &in.Log.Downloads[i]
		total := float64(d.TotalBytes())
		bytesAll += total
		if d.P2PEnabled {
			bytesP2PFiles += total
			nP2P++
			peerBytes += float64(d.BytesPeers)
			p2pTotalBytes += total
			if total > 0 {
				effSum += 100 * d.PeerEfficiency()
				effN++
			}
			switch d.Outcome {
			case protocol.OutcomeCompleted:
				doneP2P++
			case protocol.OutcomeFailedSystem:
				sysP2P++
			case protocol.OutcomeAborted:
				abP2P++
			}
		} else {
			nInfra++
			switch d.Outcome {
			case protocol.OutcomeCompleted:
				doneInfra++
			case protocol.OutcomeFailedSystem:
				sysInfra++
			case protocol.OutcomeAborted:
				abInfra++
			}
		}
	}
	if bytesAll > 0 {
		h.PctBytesP2PFiles = 100 * bytesP2PFiles / bytesAll
	}
	if effN > 0 {
		h.MeanPeerEfficiencyPct = effSum / float64(effN)
	}
	if p2pTotalBytes > 0 {
		h.AggregatePeerEfficiencyPct = 100 * peerBytes / p2pTotalBytes
	}
	pct := func(a, b int) float64 {
		if b == 0 {
			return 0
		}
		return 100 * float64(a) / float64(b)
	}
	h.CompletionInfraPct = pct(doneInfra, nInfra)
	h.CompletionP2PPct = pct(doneP2P, nP2P)
	h.FailSystemInfraPct = pct(sysInfra, nInfra)
	h.FailSystemP2PPct = pct(sysP2P, nP2P)
	h.AbortInfraPct = pct(abInfra, nInfra)
	h.AbortP2PPct = pct(abP2P, nP2P)

	h.IntraASPct = 100 * ComputeASTraffic(in).IntraASFraction()

	mob := ComputeMobility(in)
	h.Pct1AS, h.Pct2AS, h.PctMoreAS, h.PctWithin10Km =
		mob.Pct1AS, mob.Pct2AS, mob.PctMoreAS, mob.PctWithin10Km
	if traceDays > 0 {
		h.NewConnectionsPerMinute = float64(len(in.Log.Logins)) / (float64(traceDays) * 24 * 60)
	}
	return h
}

// Mobility summarizes peer movement (§6.2).
type Mobility struct {
	GUIDs         int
	Pct1AS        float64
	Pct2AS        float64
	PctMoreAS     float64
	PctWithin10Km float64
}

// ComputeMobility counts, per GUID, the distinct ASes seen across logins and
// the maximum distance between any two login geolocations.
func ComputeMobility(in *Input) Mobility {
	type state struct {
		ases   map[geo.ASN]bool
		coords []geo.Coordinates
	}
	st := make(map[id.GUID]*state)
	for i := range in.Log.Logins {
		l := &in.Log.Logins[i]
		rec, ok := in.lookup(l.IP)
		if !ok {
			continue
		}
		s := st[l.GUID]
		if s == nil {
			s = &state{ases: make(map[geo.ASN]bool)}
			st[l.GUID] = s
		}
		if !s.ases[rec.ASN] {
			s.ases[rec.ASN] = true
		}
		// Track distinct coordinates only (windows are tiny: a peer visits
		// a handful of vantage points).
		seen := false
		for _, c := range s.coords {
			if c == rec.Coord {
				seen = true
				break
			}
		}
		if !seen {
			s.coords = append(s.coords, rec.Coord)
		}
	}
	var m Mobility
	var one, two, more, within int
	for _, s := range st {
		m.GUIDs++
		switch len(s.ases) {
		case 1:
			one++
		case 2:
			two++
		default:
			more++
		}
		maxKm := 0.0
		for i := range s.coords {
			for j := i + 1; j < len(s.coords); j++ {
				if d := geo.DistanceKm(s.coords[i], s.coords[j]); d > maxKm {
					maxKm = d
				}
			}
		}
		if maxKm <= 10 {
			within++
		}
	}
	if m.GUIDs > 0 {
		m.Pct1AS = 100 * float64(one) / float64(m.GUIDs)
		m.Pct2AS = 100 * float64(two) / float64(m.GUIDs)
		m.PctMoreAS = 100 * float64(more) / float64(m.GUIDs)
		m.PctWithin10Km = 100 * float64(within) / float64(m.GUIDs)
	}
	return m
}
