package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4, 5})
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.2}, {2.5, 0.4}, {5, 1}, {99, 1},
	}
	for _, cse := range cases {
		if got := c.FractionBelow(cse.x); math.Abs(got-cse.want) > 1e-9 {
			t.Errorf("FractionBelow(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if got := c.Quantile(0.5); got != 3 {
		t.Errorf("Quantile(0.5) = %v", got)
	}
	if got := c.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %v", got)
	}
	if got := c.Quantile(1); got != 5 {
		t.Errorf("Quantile(1) = %v", got)
	}
	empty := NewCDF(nil)
	if empty.FractionBelow(1) != 0 {
		t.Error("empty CDF should return 0")
	}
	if !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(samples []float64, a, b float64) bool {
		for i, s := range samples {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				samples[i] = 0
			}
		}
		c := NewCDF(samples)
		if a > b {
			a, b = b, a
		}
		return c.FractionBelow(a) <= c.FractionBelow(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogSpace(t *testing.T) {
	xs := LogSpace(1, 1000, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if math.Abs(xs[i]-want[i])/want[i] > 1e-9 {
			t.Errorf("LogSpace[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
	if got := LogSpace(0, 10, 5); len(got) != 2 {
		t.Error("degenerate LogSpace should return endpoints")
	}
}

func TestMeanPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if got := Mean(xs); got != 30 {
		t.Errorf("Mean = %v", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v", got)
	}
	if got := Percentile(xs, 50); got != 30 {
		t.Errorf("P50 = %v", got)
	}
}

func TestBucketizeLog(t *testing.T) {
	var xs, ys []float64
	// y = 10 for x in [1,10), y = 90 for x in [100,1000).
	for i := 0; i < 50; i++ {
		xs = append(xs, 2)
		ys = append(ys, 10)
		xs = append(xs, 500)
		ys = append(ys, 90)
	}
	buckets := BucketizeLog(xs, ys, 1, 1000, 3)
	if len(buckets) != 2 {
		t.Fatalf("got %d buckets, want 2", len(buckets))
	}
	if buckets[0].Mean != 10 || buckets[1].Mean != 90 {
		t.Errorf("bucket means %v / %v", buckets[0].Mean, buckets[1].Mean)
	}
	if buckets[0].N != 50 || buckets[1].N != 50 {
		t.Errorf("bucket counts %d / %d", buckets[0].N, buckets[1].N)
	}
	if BucketizeLog(xs, ys[:1], 1, 1000, 3) != nil {
		t.Error("mismatched lengths should return nil")
	}
}
