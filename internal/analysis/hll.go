package analysis

import (
	"fmt"
	"math"
	"math/bits"
)

// HLL is a HyperLogLog cardinality sketch. The streaming summarizer uses it
// to track the active-GUID and distinct-URL populations in fixed memory:
// the paper's data set has 26M GUIDs, so an exact set is precisely the kind
// of state a bounded-memory live pass cannot afford. With 2^14 registers the
// standard error is 1.04/sqrt(16384) ~ 0.81%, leaving real headroom inside
// the 2% budget the streaming-vs-offline equivalence contract allows.
//
// The zero value is not usable; call NewHLL. Methods are not safe for
// concurrent use — each summarizer shard owns its own sketch and merges at
// snapshot time.
type HLL struct {
	registers []uint8
}

const (
	hllP = 14        // register-index bits
	hllM = 1 << hllP // number of registers
)

// NewHLL creates an empty sketch.
func NewHLL() *HLL {
	return &HLL{registers: make([]uint8, hllM)}
}

// Add observes one element.
func (h *HLL) Add(s string) {
	// FNV-1a alone disperses poorly in its upper bits for short, similar
	// strings (GUIDs share long common prefixes), which would funnel most
	// elements into a handful of registers. Two rounds of the fmix64
	// finalizer restore the avalanche — one round still leaves measurable
	// clumping on sequential inputs — while staying deterministic across
	// processes.
	x := fmix64(fmix64(fnv64a(s)))
	idx := x >> (64 - hllP)
	// Rank of the first set bit in the remaining stream, 1-based; an
	// all-zero remainder ranks one past the stream length.
	rank := uint8(bits.LeadingZeros64(x<<hllP|1<<(hllP-1))) + 1
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// Estimate returns the estimated cardinality, with the standard small-range
// (linear counting) correction.
func (h *HLL) Estimate() float64 {
	var sum float64
	zeros := 0
	for _, r := range h.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	const alpha = 0.7213 / (1 + 1.079/float64(hllM)) // bias constant for m >= 128
	e := alpha * hllM * hllM / sum
	if e <= 2.5*hllM && zeros > 0 {
		return float64(hllM) * math.Log(float64(hllM)/float64(zeros))
	}
	return e
}

// Merge unions another sketch into this one (register-wise max), so sketches
// built independently — per summarizer shard, or per control-plane node in a
// fleet — combine without double-counting shared elements.
func (h *HLL) Merge(o *HLL) {
	for i, r := range o.registers {
		if r > h.registers[i] {
			h.registers[i] = r
		}
	}
}

// Bytes serializes the sketch; the analytics endpoint ships it so a fleet
// view can union GUID populations across control-plane nodes.
func (h *HLL) Bytes() []byte {
	return append([]byte(nil), h.registers...)
}

// HLLFromBytes restores a sketch serialized with Bytes. A nil or empty input
// yields an empty sketch; any other length is an error.
func HLLFromBytes(b []byte) (*HLL, error) {
	if len(b) == 0 {
		return NewHLL(), nil
	}
	if len(b) != hllM {
		return nil, fmt.Errorf("analysis: HLL sketch has %d registers, want %d", len(b), hllM)
	}
	return &HLL{registers: append([]byte(nil), b...)}, nil
}

// fnv64a is the 64-bit FNV-1a hash. It is stable across processes and
// architectures, which the fleet-merge path depends on: two CPs hashing the
// same GUID must set the same register.
func fnv64a(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// fmix64 is the MurmurHash3 64-bit finalizer: a fixed bijective mixer with
// full avalanche, used to spread fnv64a output evenly over the registers.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
