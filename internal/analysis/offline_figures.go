package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// OfflineFigures computes the figure-style passes that previously required
// the materialized download slice — the size CDFs (Figure 3a), content
// popularity (Figure 3b), and abort rates by size class (Figure 7) — one
// record at a time, plus a per-region offload table. Together with
// OfflineAccumulator this makes every offline report derivable from a
// single streaming pass over a segment store of any size.
//
// Exactness: Figure 3a is evaluated only at the 25 fixed log-spaced edges a
// plot draws, so instead of retaining every sample the accumulator keeps one
// counter per edge — for a value v it increments the bucket of the smallest
// edge >= v (v <= edges[k] ⟺ bucket(v) <= k), and the CDF at edge k is the
// prefix sum divided by the total. That is integer arithmetic over the same
// multiset the batch NewCDF(...).Points(...) pass sorts, so the output is
// bit-identical, not approximate. The >500MB headline keeps its own exact
// counter because 0.5GB is not an edge. Figures 3b and 7 are plain tallies.
type OfflineFigures struct {
	edges []float64

	// Per-class edge buckets and overflow (values above the last edge).
	infraB, allB, p2pB    []int64
	infraOv, allOv, p2pOv int64
	// p2pLE05 counts peer-assisted downloads of <= 0.5 GB, the complement
	// of the §4.4 "82% over 500MB" headline.
	p2pLE05 int64

	perURL map[string]int

	fig7Aborted [numSizeClasses][3]int64
	fig7Total   [numSizeClasses][3]int64

	regions map[string]*regionOffload
}

type regionOffload struct {
	downloads  int64
	bytesInfra int64
	bytesPeers int64
}

// RegionOffloadRow is one row of the per-region offload table.
type RegionOffloadRow struct {
	Region     string
	Downloads  int64
	BytesInfra int64
	BytesPeers int64
	OffloadPct float64
}

// NewOfflineFigures creates an empty figures accumulator.
func NewOfflineFigures() *OfflineFigures {
	edges := LogSpace(0.01, 10, 25)
	return &OfflineFigures{
		edges:   edges,
		infraB:  make([]int64, len(edges)),
		allB:    make([]int64, len(edges)),
		p2pB:    make([]int64, len(edges)),
		perURL:  map[string]int{},
		regions: map[string]*regionOffload{},
	}
}

// Add folds one download record in.
func (f *OfflineFigures) Add(d *OfflineDownload) {
	gb := float64(d.Size) / 1e9
	k := sort.SearchFloat64s(f.edges, gb)
	bump := func(b []int64, ov *int64) {
		if k < len(b) {
			b[k]++
		} else {
			*ov++
		}
	}
	bump(f.allB, &f.allOv)
	if d.P2PEnabled {
		bump(f.p2pB, &f.p2pOv)
		if gb <= 0.5 {
			f.p2pLE05++
		}
	} else {
		bump(f.infraB, &f.infraOv)
	}

	f.perURL[d.URLHash]++

	sc := classifySize(d.Size)
	cols := [2]int{2, 0}
	if d.P2PEnabled {
		cols[1] = 1
	}
	for _, c := range cols {
		f.fig7Total[sc][c]++
		if d.Outcome == "aborted" {
			f.fig7Aborted[sc][c]++
		}
	}

	name := d.Region
	if name == "" {
		name = RegionUnknown
	}
	r := f.regions[name]
	if r == nil {
		r = &regionOffload{}
		f.regions[name] = r
	}
	r.downloads++
	r.bytesInfra += d.BytesInfra
	r.bytesPeers += d.BytesPeers
}

// Merge folds another accumulator's state into this one. All state is
// integer tallies, so a sharded parallel pass merges to exactly the
// sequential result.
func (f *OfflineFigures) Merge(o *OfflineFigures) {
	for i := range f.edges {
		f.infraB[i] += o.infraB[i]
		f.allB[i] += o.allB[i]
		f.p2pB[i] += o.p2pB[i]
	}
	f.infraOv += o.infraOv
	f.allOv += o.allOv
	f.p2pOv += o.p2pOv
	f.p2pLE05 += o.p2pLE05
	for u, c := range o.perURL {
		f.perURL[u] += c
	}
	for sc := 0; sc < int(numSizeClasses); sc++ {
		for c := 0; c < 3; c++ {
			f.fig7Aborted[sc][c] += o.fig7Aborted[sc][c]
			f.fig7Total[sc][c] += o.fig7Total[sc][c]
		}
	}
	for name, r := range o.regions {
		mine := f.regions[name]
		if mine == nil {
			mine = &regionOffload{}
			f.regions[name] = mine
		}
		mine.downloads += r.downloads
		mine.bytesInfra += r.bytesInfra
		mine.bytesPeers += r.bytesPeers
	}
}

func cdfPoints(edges []float64, buckets []int64, overflow int64) []Point {
	total := overflow
	for _, b := range buckets {
		total += b
	}
	out := make([]Point, len(edges))
	var cum int64
	for i, x := range edges {
		cum += buckets[i]
		y := 0.0
		if total > 0 {
			// Grouped exactly like 100*CDF.FractionBelow so the points are
			// bit-identical to the batch pass, not merely close.
			y = 100 * (float64(cum) / float64(total))
		}
		out[i] = Point{X: x, Y: y}
	}
	return out
}

// Figure3a derives the size-CDF figure from the edge buckets.
func (f *OfflineFigures) Figure3a() Figure3a {
	out := Figure3a{
		InfraOnly:    cdfPoints(f.edges, f.infraB, f.infraOv),
		All:          cdfPoints(f.edges, f.allB, f.allOv),
		PeerAssisted: cdfPoints(f.edges, f.p2pB, f.p2pOv),
	}
	var p2pN int64 = f.p2pOv
	for _, b := range f.p2pB {
		p2pN += b
	}
	frac := 0.0
	if p2pN > 0 {
		frac = float64(f.p2pLE05) / float64(p2pN)
	}
	out.PctPeerAssistedOver500MB = 100 * (1 - frac)
	return out
}

// Figure3b derives the popularity ranking from the per-URL tallies.
func (f *OfflineFigures) Figure3b() Figure3b {
	counts := make([]int, 0, len(f.perURL))
	for _, c := range f.perURL {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	return Figure3b{Counts: counts}
}

// Figure7 derives the abort-rate table.
func (f *OfflineFigures) Figure7() Figure7 {
	var out Figure7
	for sc := 0; sc < int(numSizeClasses); sc++ {
		for c := 0; c < 3; c++ {
			out.N[sc][c] = int(f.fig7Total[sc][c])
			if f.fig7Total[sc][c] > 0 {
				out.PauseRatePct[sc][c] = 100 * float64(f.fig7Aborted[sc][c]) / float64(f.fig7Total[sc][c])
			}
		}
	}
	return out
}

// RegionOffload returns the per-region traffic table, largest regions first.
func (f *OfflineFigures) RegionOffload() []RegionOffloadRow {
	out := make([]RegionOffloadRow, 0, len(f.regions))
	for name, r := range f.regions {
		row := RegionOffloadRow{
			Region: name, Downloads: r.downloads,
			BytesInfra: r.bytesInfra, BytesPeers: r.bytesPeers,
		}
		if t := r.bytesInfra + r.bytesPeers; t > 0 {
			row.OffloadPct = 100 * float64(r.bytesPeers) / float64(t)
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		bi := out[i].BytesInfra + out[i].BytesPeers
		bj := out[j].BytesInfra + out[j].BytesPeers
		if bi != bj {
			return bi > bj
		}
		return out[i].Region < out[j].Region
	})
	return out
}

// Render prints the figure passes as text.
func (f *OfflineFigures) Render() string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	f3a := f.Figure3a()
	w("figure 3a: %.1f%% of peer-assisted requests are for objects >500MB (paper: 82%%)",
		f3a.PctPeerAssistedOver500MB)
	f3b := f.Figure3b()
	top := 0
	if len(f3b.Counts) > 0 {
		top = f3b.Counts[0]
	}
	w("figure 3b: %d objects, top object %d downloads, Zipf exponent %.2f",
		len(f3b.Counts), top, f3b.PowerLawSlope())
	f7 := f.Figure7()
	w("figure 7 abort rate %% (infra / p2p / all):")
	for sc := 0; sc < int(numSizeClasses); sc++ {
		w("  %-10s %6.2f / %6.2f / %6.2f  (n=%d)", SizeClass(sc),
			f7.PauseRatePct[sc][0], f7.PauseRatePct[sc][1], f7.PauseRatePct[sc][2], f7.N[sc][2])
	}
	w("per-region offload:")
	for _, row := range f.RegionOffload() {
		w("  %-14s %9d dls  infra %s  peers %s  offload %.1f%%", row.Region,
			row.Downloads, humanBytes(row.BytesInfra), humanBytes(row.BytesPeers), row.OffloadPct)
	}
	return b.String()
}
