package analysis

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// The streaming mode computes the paper's headline measurements — peer-served
// fraction (§4's ~70–80% offload), per-region activity, intra-AS vs inter-AS
// byte splits (§5/§6) — incrementally, in memory bounded by the *geography*
// (regions, countries, ASes) rather than by the number of log entries. The
// exact-set quantities that cannot be bounded (GUID and URL populations) are
// tracked with HyperLogLog sketches. Over a sealed segment store the result
// is equivalent to SummarizeOffline: identical for count- and byte-derived
// metrics, within the sketch's ~1.6% standard error for cardinalities. The
// speed medians and Zipf fit remain offline-only — they need the full sample.

// StreamingSummarizer is a sharded, concurrency-safe aggregator over offline
// download records. Shards exist to keep concurrent producers (a parallel
// segment pass, the control plane's CN session loops) off one mutex; Snapshot
// merges them. Memory is fixed: each shard holds scalar tallies, per-region /
// per-AS maps bounded by the atlas, and two HLL sketches.
type StreamingSummarizer struct {
	shards []*streamShard
}

type streamShard struct {
	mu sync.Mutex
	streamAgg
}

// streamAgg is the mergeable aggregate state; StreamingSummary embeds its
// exported mirror.
type streamAgg struct {
	downloads                                        int64
	nInfra, nP2P, doneInfra, doneP2P, abInfra, abP2P int64
	bytesAll, bytesInfra, bytesPeers                 int64
	bytesP2PFiles, bytesPeersP2P                     int64
	effSum                                           float64
	effN                                             int64
	intraAS, interAS                                 int64
	// Streaming-delivery tallies: integer sums mirroring the offline
	// accumulator exactly, per the equivalence contract.
	streams           int64
	streamStartupSum  int64
	streamRebufCnt    int64
	streamRebufMs     int64
	streamMisses      int64
	streamPlayed      int64
	streamRescueBytes int64
	perASUp           map[uint32]int64
	countries         map[string]struct{}
	ases              map[uint32]struct{}
	regions           map[string]*regionAgg
	matrix            map[string]map[string]int64
	guids             *HLL
	urls              *HLL
}

type regionAgg struct {
	downloads     int64
	bytesInfra    int64
	bytesPeers    int64
	bytesUploaded int64
}

func newStreamAgg() streamAgg {
	return streamAgg{
		perASUp:   map[uint32]int64{},
		countries: map[string]struct{}{},
		ases:      map[uint32]struct{}{},
		regions:   map[string]*regionAgg{},
		matrix:    map[string]map[string]int64{},
		guids:     NewHLL(),
		urls:      NewHLL(),
	}
}

// RegionUnknown is the bucket for records without a region annotation
// (segments written before the region field existed, or IPs EdgeScape could
// not resolve).
const RegionUnknown = "unknown"

// NewStreamingSummarizer creates a summarizer with the given shard count
// (values below 1 select 1).
func NewStreamingSummarizer(shards int) *StreamingSummarizer {
	if shards < 1 {
		shards = 1
	}
	s := &StreamingSummarizer{shards: make([]*streamShard, shards)}
	for i := range s.shards {
		s.shards[i] = &streamShard{streamAgg: newStreamAgg()}
	}
	return s
}

// Observe folds one download record into the aggregates. Safe for concurrent
// use; records of the same GUID land on the same shard.
func (s *StreamingSummarizer) Observe(d *OfflineDownload) {
	sh := s.shards[fnv64a(d.GUID)%uint64(len(s.shards))]
	sh.mu.Lock()
	sh.observe(d)
	sh.mu.Unlock()
}

func (a *streamAgg) regionOf(name string) *regionAgg {
	if name == "" {
		name = RegionUnknown
	}
	r := a.regions[name]
	if r == nil {
		r = &regionAgg{}
		a.regions[name] = r
	}
	return r
}

func (a *streamAgg) observe(d *OfflineDownload) {
	a.downloads++
	a.guids.Add(d.GUID)
	a.urls.Add(d.URLHash)
	a.countries[d.Country] = struct{}{}
	a.ases[d.ASN] = struct{}{}

	total := d.BytesInfra + d.BytesPeers
	a.bytesAll += total
	a.bytesInfra += d.BytesInfra
	a.bytesPeers += d.BytesPeers
	if d.P2PEnabled {
		a.nP2P++
		a.bytesP2PFiles += total
		a.bytesPeersP2P += d.BytesPeers
		if total > 0 {
			a.effSum += 100 * float64(d.BytesPeers) / float64(total)
			a.effN++
		}
	} else {
		a.nInfra++
	}
	switch d.Outcome {
	case "completed":
		if d.P2PEnabled {
			a.doneP2P++
		} else {
			a.doneInfra++
		}
	case "aborted":
		if d.P2PEnabled {
			a.abP2P++
		} else {
			a.abInfra++
		}
	}

	if st := d.Stream; st != nil {
		a.streams++
		a.streamStartupSum += st.StartupDelayMs
		a.streamRebufCnt += st.RebufferCount
		a.streamRebufMs += st.RebufferMs
		a.streamMisses += st.DeadlineMisses
		a.streamPlayed += st.PiecesPlayed
		a.streamRescueBytes += st.EdgeRescueBytes
	}

	reg := a.regionOf(d.Region)
	reg.downloads++
	reg.bytesInfra += d.BytesInfra
	reg.bytesPeers += d.BytesPeers

	toRegion := d.Region
	if toRegion == "" {
		toRegion = RegionUnknown
	}
	for _, pc := range d.FromPeers {
		if pc.ASN == d.ASN {
			a.intraAS += pc.Bytes
		} else {
			a.interAS += pc.Bytes
			a.perASUp[pc.ASN] += pc.Bytes
		}
		a.regionOf(pc.Region).bytesUploaded += pc.Bytes
		from := pc.Region
		if from == "" {
			from = RegionUnknown
		}
		row := a.matrix[from]
		if row == nil {
			row = map[string]int64{}
			a.matrix[from] = row
		}
		row[toRegion] += pc.Bytes
	}
}

// RegionAnalytics is one region's live aggregate.
type RegionAnalytics struct {
	Region        string  `json:"region"`
	Downloads     int64   `json:"downloads"`
	BytesInfra    int64   `json:"bytesInfra"`
	BytesPeers    int64   `json:"bytesPeers"`
	BytesUploaded int64   `json:"bytesUploaded"`
	OffloadPct    float64 `json:"offloadPct"`
}

// StreamingSummary is the bounded-memory live analytics document: the raw
// mergeable tallies (so fleet views combine exactly) plus the derived
// headline metrics. It is the JSON served on GET /v1/analytics.
type StreamingSummary struct {
	Downloads  int64 `json:"downloads"`
	NInfra     int64 `json:"nInfraOnly"`
	NP2P       int64 `json:"nP2P"`
	DoneInfra  int64 `json:"doneInfraOnly"`
	DoneP2P    int64 `json:"doneP2P"`
	AbortInfra int64 `json:"abortInfraOnly"`
	AbortP2P   int64 `json:"abortP2P"`

	BytesAll      int64 `json:"bytesAll"`
	BytesInfra    int64 `json:"bytesInfra"`
	BytesPeers    int64 `json:"bytesPeers"`
	BytesP2PFiles int64 `json:"bytesP2PFiles"`
	BytesPeersP2P int64 `json:"bytesPeersP2P"`

	EffSum float64 `json:"effSum"`
	EffN   int64   `json:"effN"`

	IntraASBytes   int64            `json:"intraASBytes"`
	InterASBytes   int64            `json:"interASBytes"`
	InterASUploads map[uint32]int64 `json:"interASUploads,omitempty"`

	// Streaming-delivery raw tallies (mergeable integer sums).
	StreamDownloads       int64 `json:"streamDownloads"`
	StreamStartupSumMs    int64 `json:"streamStartupSumMs"`
	StreamRebufferEvents  int64 `json:"streamRebufferEvents"`
	StreamRebufferMs      int64 `json:"streamRebufferMs"`
	StreamDeadlineMisses  int64 `json:"streamDeadlineMisses"`
	StreamPiecesPlayed    int64 `json:"streamPiecesPlayed"`
	StreamEdgeRescueBytes int64 `json:"streamEdgeRescueBytes"`

	CountrySet []string `json:"countrySet,omitempty"`
	ASSet      []uint32 `json:"asSet,omitempty"`

	Regions      []RegionAnalytics           `json:"regions,omitempty"`
	RegionMatrix map[string]map[string]int64 `json:"regionMatrix,omitempty"`

	GUIDSketch []byte `json:"guidSketch,omitempty"`
	URLSketch  []byte `json:"urlSketch,omitempty"`

	// Derived headline metrics (recomputed by Finalize after a Merge).
	ActiveGUIDs                float64 `json:"activeGUIDs"`
	DistinctURLs               float64 `json:"distinctURLs"`
	Countries                  int     `json:"countries"`
	ASes                       int     `json:"ases"`
	OffloadPct                 float64 `json:"offloadPct"`
	PctBytesP2PFiles           float64 `json:"pctBytesP2PFiles"`
	MeanPeerEfficiencyPct      float64 `json:"meanPeerEfficiencyPct"`
	AggregatePeerEfficiencyPct float64 `json:"aggregatePeerEfficiencyPct"`
	CompletionInfraPct         float64 `json:"completionInfraPct"`
	CompletionP2PPct           float64 `json:"completionP2PPct"`
	AbortInfraPct              float64 `json:"abortInfraPct"`
	AbortP2PPct                float64 `json:"abortP2PPct"`
	IntraASPct                 float64 `json:"intraASPct"`
	HeavyASes                  int     `json:"heavyASes"`
	HeavySharePct              float64 `json:"heavySharePct"`
	StreamStartupMeanMs        float64 `json:"streamStartupMeanMs"`
	StreamDeadlineMissPct      float64 `json:"streamDeadlineMissPct"`
}

// Snapshot merges every shard and returns the finalized summary. It may be
// called at any time; observation continues concurrently.
func (s *StreamingSummarizer) Snapshot() StreamingSummary {
	merged := newStreamAgg()
	for _, sh := range s.shards {
		sh.mu.Lock()
		merged.merge(&sh.streamAgg)
		sh.mu.Unlock()
	}
	return merged.summary()
}

// ActiveGUIDs estimates the distinct-GUID population seen so far without
// building the full summary; the control plane's metrics gauge uses it.
func (s *StreamingSummarizer) ActiveGUIDs() float64 {
	g := NewHLL()
	for _, sh := range s.shards {
		sh.mu.Lock()
		g.Merge(sh.guids)
		sh.mu.Unlock()
	}
	return g.Estimate()
}

func (a *streamAgg) merge(o *streamAgg) {
	a.downloads += o.downloads
	a.nInfra += o.nInfra
	a.nP2P += o.nP2P
	a.doneInfra += o.doneInfra
	a.doneP2P += o.doneP2P
	a.abInfra += o.abInfra
	a.abP2P += o.abP2P
	a.bytesAll += o.bytesAll
	a.bytesInfra += o.bytesInfra
	a.bytesPeers += o.bytesPeers
	a.bytesP2PFiles += o.bytesP2PFiles
	a.bytesPeersP2P += o.bytesPeersP2P
	a.effSum += o.effSum
	a.effN += o.effN
	a.intraAS += o.intraAS
	a.interAS += o.interAS
	a.streams += o.streams
	a.streamStartupSum += o.streamStartupSum
	a.streamRebufCnt += o.streamRebufCnt
	a.streamRebufMs += o.streamRebufMs
	a.streamMisses += o.streamMisses
	a.streamPlayed += o.streamPlayed
	a.streamRescueBytes += o.streamRescueBytes
	for asn, b := range o.perASUp {
		a.perASUp[asn] += b
	}
	for c := range o.countries {
		a.countries[c] = struct{}{}
	}
	for asn := range o.ases {
		a.ases[asn] = struct{}{}
	}
	for name, r := range o.regions {
		dst := a.regionOf(name)
		dst.downloads += r.downloads
		dst.bytesInfra += r.bytesInfra
		dst.bytesPeers += r.bytesPeers
		dst.bytesUploaded += r.bytesUploaded
	}
	for from, row := range o.matrix {
		dst := a.matrix[from]
		if dst == nil {
			dst = map[string]int64{}
			a.matrix[from] = dst
		}
		for to, b := range row {
			dst[to] += b
		}
	}
	a.guids.Merge(o.guids)
	a.urls.Merge(o.urls)
}

func (a *streamAgg) summary() StreamingSummary {
	s := StreamingSummary{
		Downloads: a.downloads,
		NInfra:    a.nInfra, NP2P: a.nP2P,
		DoneInfra: a.doneInfra, DoneP2P: a.doneP2P,
		AbortInfra: a.abInfra, AbortP2P: a.abP2P,
		BytesAll: a.bytesAll, BytesInfra: a.bytesInfra, BytesPeers: a.bytesPeers,
		BytesP2PFiles: a.bytesP2PFiles, BytesPeersP2P: a.bytesPeersP2P,
		EffSum: a.effSum, EffN: a.effN,
		IntraASBytes: a.intraAS, InterASBytes: a.interAS,
		StreamDownloads:       a.streams,
		StreamStartupSumMs:    a.streamStartupSum,
		StreamRebufferEvents:  a.streamRebufCnt,
		StreamRebufferMs:      a.streamRebufMs,
		StreamDeadlineMisses:  a.streamMisses,
		StreamPiecesPlayed:    a.streamPlayed,
		StreamEdgeRescueBytes: a.streamRescueBytes,
		GUIDSketch:            a.guids.Bytes(), URLSketch: a.urls.Bytes(),
	}
	if len(a.perASUp) > 0 {
		s.InterASUploads = make(map[uint32]int64, len(a.perASUp))
		for asn, b := range a.perASUp {
			s.InterASUploads[asn] = b
		}
	}
	s.CountrySet = make([]string, 0, len(a.countries))
	for c := range a.countries {
		s.CountrySet = append(s.CountrySet, c)
	}
	sort.Strings(s.CountrySet)
	s.ASSet = make([]uint32, 0, len(a.ases))
	for asn := range a.ases {
		s.ASSet = append(s.ASSet, asn)
	}
	sort.Slice(s.ASSet, func(i, j int) bool { return s.ASSet[i] < s.ASSet[j] })
	names := make([]string, 0, len(a.regions))
	for name := range a.regions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := a.regions[name]
		ra := RegionAnalytics{
			Region: name, Downloads: r.downloads,
			BytesInfra: r.bytesInfra, BytesPeers: r.bytesPeers,
			BytesUploaded: r.bytesUploaded,
		}
		if t := r.bytesInfra + r.bytesPeers; t > 0 {
			ra.OffloadPct = 100 * float64(r.bytesPeers) / float64(t)
		}
		s.Regions = append(s.Regions, ra)
	}
	if len(a.matrix) > 0 {
		s.RegionMatrix = make(map[string]map[string]int64, len(a.matrix))
		for from, row := range a.matrix {
			dst := make(map[string]int64, len(row))
			for to, b := range row {
				dst[to] = b
			}
			s.RegionMatrix[from] = dst
		}
	}
	s.Finalize()
	return s
}

// Finalize recomputes the derived headline metrics from the raw tallies.
// Call it after mutating the raw fields (Merge does this itself).
func (s *StreamingSummary) Finalize() {
	if g, err := HLLFromBytes(s.GUIDSketch); err == nil {
		s.ActiveGUIDs = g.Estimate()
	}
	if u, err := HLLFromBytes(s.URLSketch); err == nil {
		s.DistinctURLs = u.Estimate()
	}
	s.Countries = len(s.CountrySet)
	s.ASes = len(s.ASSet)
	pct := func(n, d int64) float64 {
		if d == 0 {
			return 0
		}
		return 100 * float64(n) / float64(d)
	}
	s.OffloadPct = pct(s.BytesPeers, s.BytesAll)
	s.PctBytesP2PFiles = pct(s.BytesP2PFiles, s.BytesAll)
	s.AggregatePeerEfficiencyPct = pct(s.BytesPeersP2P, s.BytesP2PFiles)
	s.MeanPeerEfficiencyPct = 0
	if s.EffN > 0 {
		s.MeanPeerEfficiencyPct = s.EffSum / float64(s.EffN)
	}
	s.CompletionInfraPct = pct(s.DoneInfra, s.NInfra)
	s.CompletionP2PPct = pct(s.DoneP2P, s.NP2P)
	s.AbortInfraPct = pct(s.AbortInfra, s.NInfra)
	s.AbortP2PPct = pct(s.AbortP2P, s.NP2P)
	s.IntraASPct = pct(s.IntraASBytes, s.IntraASBytes+s.InterASBytes)
	s.HeavyASes, s.HeavySharePct = heavyUploaders(s.InterASUploads)
	s.StreamStartupMeanMs = 0
	if s.StreamDownloads > 0 {
		s.StreamStartupMeanMs = float64(s.StreamStartupSumMs) / float64(s.StreamDownloads)
	}
	s.StreamDeadlineMissPct = pct(s.StreamDeadlineMisses, s.StreamPiecesPlayed)
}

// Merge folds another summary into this one — the monitor's fleet view over
// N control planes. Counts and byte totals sum; GUID/URL sketches union, so
// a peer reporting through two CPs is still counted once; derived metrics
// are recomputed.
func (s *StreamingSummary) Merge(o *StreamingSummary) error {
	s.Downloads += o.Downloads
	s.NInfra += o.NInfra
	s.NP2P += o.NP2P
	s.DoneInfra += o.DoneInfra
	s.DoneP2P += o.DoneP2P
	s.AbortInfra += o.AbortInfra
	s.AbortP2P += o.AbortP2P
	s.BytesAll += o.BytesAll
	s.BytesInfra += o.BytesInfra
	s.BytesPeers += o.BytesPeers
	s.BytesP2PFiles += o.BytesP2PFiles
	s.BytesPeersP2P += o.BytesPeersP2P
	s.EffSum += o.EffSum
	s.EffN += o.EffN
	s.IntraASBytes += o.IntraASBytes
	s.InterASBytes += o.InterASBytes
	s.StreamDownloads += o.StreamDownloads
	s.StreamStartupSumMs += o.StreamStartupSumMs
	s.StreamRebufferEvents += o.StreamRebufferEvents
	s.StreamRebufferMs += o.StreamRebufferMs
	s.StreamDeadlineMisses += o.StreamDeadlineMisses
	s.StreamPiecesPlayed += o.StreamPiecesPlayed
	s.StreamEdgeRescueBytes += o.StreamEdgeRescueBytes
	if len(o.InterASUploads) > 0 && s.InterASUploads == nil {
		s.InterASUploads = map[uint32]int64{}
	}
	for asn, b := range o.InterASUploads {
		s.InterASUploads[asn] += b
	}
	s.CountrySet = mergeSortedStrings(s.CountrySet, o.CountrySet)
	s.ASSet = mergeSortedUint32(s.ASSet, o.ASSet)
	s.Regions = mergeRegions(s.Regions, o.Regions)
	if len(o.RegionMatrix) > 0 && s.RegionMatrix == nil {
		s.RegionMatrix = map[string]map[string]int64{}
	}
	for from, row := range o.RegionMatrix {
		dst := s.RegionMatrix[from]
		if dst == nil {
			dst = map[string]int64{}
			s.RegionMatrix[from] = dst
		}
		for to, b := range row {
			dst[to] += b
		}
	}
	g, err := HLLFromBytes(s.GUIDSketch)
	if err != nil {
		return err
	}
	og, err := HLLFromBytes(o.GUIDSketch)
	if err != nil {
		return err
	}
	g.Merge(og)
	s.GUIDSketch = g.Bytes()
	u, err := HLLFromBytes(s.URLSketch)
	if err != nil {
		return err
	}
	ou, err := HLLFromBytes(o.URLSketch)
	if err != nil {
		return err
	}
	u.Merge(ou)
	s.URLSketch = u.Bytes()
	s.Finalize()
	return nil
}

func mergeSortedStrings(a, b []string) []string {
	seen := make(map[string]struct{}, len(a)+len(b))
	for _, v := range a {
		seen[v] = struct{}{}
	}
	for _, v := range b {
		seen[v] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func mergeSortedUint32(a, b []uint32) []uint32 {
	seen := make(map[uint32]struct{}, len(a)+len(b))
	for _, v := range a {
		seen[v] = struct{}{}
	}
	for _, v := range b {
		seen[v] = struct{}{}
	}
	out := make([]uint32, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func mergeRegions(a, b []RegionAnalytics) []RegionAnalytics {
	byName := make(map[string]RegionAnalytics, len(a)+len(b))
	for _, r := range a {
		byName[r.Region] = r
	}
	for _, r := range b {
		cur, ok := byName[r.Region]
		if !ok {
			byName[r.Region] = r
			continue
		}
		cur.Downloads += r.Downloads
		cur.BytesInfra += r.BytesInfra
		cur.BytesPeers += r.BytesPeers
		cur.BytesUploaded += r.BytesUploaded
		byName[r.Region] = cur
	}
	out := make([]RegionAnalytics, 0, len(byName))
	for _, r := range byName {
		if t := r.BytesInfra + r.BytesPeers; t > 0 {
			r.OffloadPct = 100 * float64(r.BytesPeers) / float64(t)
		} else {
			r.OffloadPct = 0
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Region < out[j].Region })
	return out
}

// humanBytes renders a byte count for the dashboard tables.
func humanBytes(b int64) string {
	const unit = 1024
	if b < unit {
		return fmt.Sprintf("%d B", b)
	}
	div, exp := int64(unit), 0
	for n := b / unit; n >= unit; n /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(b)/float64(div), "KMGTPE"[exp])
}

// Render prints the live-analytics dashboard: the paper's Fig-style headline
// metrics, the per-region offload table (§4), and the AS-locality split
// (§6.1). Both `netsession-analyze -follow` and `netsession-report -live`
// print this block.
func (s StreamingSummary) Render() string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	w("downloads: %d (%d infra-only, %d peer-assisted) by ~%.0f GUIDs over ~%.0f objects (%d countries, %d ASes)",
		s.Downloads, s.NInfra, s.NP2P, s.ActiveGUIDs, s.DistinctURLs, s.Countries, s.ASes)
	w("offload:   %.1f%% of %s served by peers (paper §4: ~70-80%% for p2p-enabled traffic)",
		s.OffloadPct, humanBytes(s.BytesAll))
	w("p2p-enabled files carry %.1f%% of bytes; peer efficiency mean %.1f%%, byte-weighted %.1f%% (paper: 57.4%% / 71.4%%)",
		s.PctBytesP2PFiles, s.MeanPeerEfficiencyPct, s.AggregatePeerEfficiencyPct)
	w("completion: infra-only %.1f%%, peer-assisted %.1f%%; aborted %.1f%% / %.1f%%",
		s.CompletionInfraPct, s.CompletionP2PPct, s.AbortInfraPct, s.AbortP2PPct)
	w("AS locality: intra-AS %s (%.1f%%), inter-AS %s; %d heavy ASes carry %.0f%% of inter-AS bytes",
		humanBytes(s.IntraASBytes), s.IntraASPct, humanBytes(s.InterASBytes),
		s.HeavyASes, s.HeavySharePct)
	if s.StreamDownloads > 0 {
		w("streaming: %d sessions, mean startup %.0fms, %d rebuffers (%dms paused), deadline misses %.2f%%, edge rescued %s",
			s.StreamDownloads, s.StreamStartupMeanMs, s.StreamRebufferEvents,
			s.StreamRebufferMs, s.StreamDeadlineMissPct, humanBytes(s.StreamEdgeRescueBytes))
	}
	if len(s.Regions) > 0 {
		w("")
		w("%-10s %10s %12s %12s %12s %9s", "region", "downloads", "infra-bytes", "peer-bytes", "uploaded", "offload")
		for _, r := range s.Regions {
			w("%-10s %10d %12s %12s %12s %8.1f%%",
				r.Region, r.Downloads, humanBytes(r.BytesInfra),
				humanBytes(r.BytesPeers), humanBytes(r.BytesUploaded), r.OffloadPct)
		}
	}
	return b.String()
}
