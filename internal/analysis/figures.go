package analysis

import (
	"math"
	"sort"

	"netsession/internal/content"
	"netsession/internal/geo"
	"netsession/internal/id"
	"netsession/internal/protocol"
)

// Figure2Bubble is one bubble of the peer-location map (paper Figure 2).
type Figure2Bubble struct {
	Location geo.LocationID
	City     string
	Country  geo.CountryCode
	Coord    geo.Coordinates
	Peers    int
}

// ComputeFigure2 counts peers per first-connection location.
func ComputeFigure2(in *Input) []Figure2Bubble {
	first := make(map[id.GUID]geo.LocationID)
	for i := range in.Log.Logins {
		l := &in.Log.Logins[i]
		if _, seen := first[l.GUID]; seen {
			continue
		}
		if rec, ok := in.lookup(l.IP); ok {
			first[l.GUID] = rec.Location
		}
	}
	counts := make(map[geo.LocationID]int)
	for _, loc := range first {
		counts[loc]++
	}
	out := make([]Figure2Bubble, 0, len(counts))
	for locID, n := range counts {
		loc := in.Atlas.Location(locID)
		out = append(out, Figure2Bubble{
			Location: locID, City: loc.City, Country: loc.Country,
			Coord: loc.Coord, Peers: n,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peers > out[j].Peers })
	return out
}

// Figure3a is the request CDF by object size for the three download
// classes.
type Figure3a struct {
	InfraOnly    []Point // x: object size in GB, y: CDF %
	All          []Point
	PeerAssisted []Point
	// PctPeerAssistedOver500MB is the §4.4 headline: 82% in the paper.
	PctPeerAssistedOver500MB float64
}

// ComputeFigure3a builds the size CDFs from the download log.
func ComputeFigure3a(in *Input) Figure3a {
	var infra, all, p2p []float64
	for i := range in.Log.Downloads {
		d := &in.Log.Downloads[i]
		gb := float64(d.Size) / 1e9
		all = append(all, gb)
		if d.P2PEnabled {
			p2p = append(p2p, gb)
		} else {
			infra = append(infra, gb)
		}
	}
	xs := LogSpace(0.01, 10, 25)
	p2pCDF := NewCDF(p2p)
	return Figure3a{
		InfraOnly:                NewCDF(infra).Points(xs),
		All:                      NewCDF(all).Points(xs),
		PeerAssisted:             p2pCDF.Points(xs),
		PctPeerAssistedOver500MB: 100 * (1 - p2pCDF.FractionBelow(0.5)),
	}
}

// Figure3b is content popularity: downloads per object, by rank.
type Figure3b struct {
	// Counts[i] is the number of downloads of the rank-(i+1) object.
	Counts []int
}

// ComputeFigure3b ranks objects by download count (paper Figure 3b shows
// the "nearly ubiquitous power law").
func ComputeFigure3b(in *Input) Figure3b {
	per := make(map[string]int)
	for i := range in.Log.Downloads {
		per[in.Log.Downloads[i].URLHash]++
	}
	counts := make([]int, 0, len(per))
	for _, c := range per {
		counts = append(counts, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	return Figure3b{Counts: counts}
}

// PowerLawSlope fits log(count) ~ alpha*log(rank) over the head of the
// distribution and returns -alpha (≈ the Zipf exponent).
func (f Figure3b) PowerLawSlope() float64 {
	n := len(f.Counts)
	if n > 1000 {
		n = 1000
	}
	if n < 10 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	m := 0
	for i := 0; i < n; i++ {
		if f.Counts[i] <= 0 {
			break
		}
		x := math.Log(float64(i + 1))
		y := math.Log(float64(f.Counts[i]))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		m++
	}
	if m < 2 {
		return 0
	}
	fm := float64(m)
	return -(fm*sxy - sx*sy) / (fm*sxx - sx*sx)
}

// Figure3c is bytes served per hour across the trace, in GMT and in the
// requesters' local time.
type Figure3c struct {
	// GMT[h] is bytes served in trace hour h.
	GMT []float64
	// LocalHourOfDay[h] is total bytes attributed to local hour-of-day h
	// (0..23); its peak-to-trough ratio shows the diurnal cycle.
	LocalHourOfDay [24]float64
}

// ComputeFigure3c aggregates served bytes over time.
func ComputeFigure3c(in *Input, days int) Figure3c {
	out := Figure3c{GMT: make([]float64, days*24)}
	for i := range in.Log.Downloads {
		d := &in.Log.Downloads[i]
		h := int(d.StartMs / 3_600_000)
		if h < 0 || h >= len(out.GMT) {
			continue
		}
		bytes := float64(d.TotalBytes())
		out.GMT[h] += bytes
		if rec, ok := in.lookup(d.IP); ok {
			lh := ((h+rec.TZOffset)%24 + 24) % 24
			out.LocalHourOfDay[lh] += bytes
		}
	}
	return out
}

// Figure4 compares download-speed CDFs in the two networks with the most
// downloads: edge-only versus mostly-peer-assisted.
type Figure4 struct {
	ASX Figure4AS
	ASY Figure4AS
}

// Figure4AS is one AS panel.
type Figure4AS struct {
	ASN      geo.ASN
	EdgeOnly []Point // x: Mbps, y: CDF %
	P2PHeavy []Point
	// Medians, for the headline comparison.
	MedianEdgeMbps float64
	MedianP2PMbps  float64
}

// ComputeFigure4 finds the two largest ASes by downloads and builds the
// speed CDFs: "either a) all the bytes came from the edge servers, or b) at
// least 50% of the bytes came from peers" (§5.2).
func ComputeFigure4(in *Input) Figure4 {
	perAS := make(map[geo.ASN]int)
	for i := range in.Log.Downloads {
		if rec, ok := in.lookup(in.Log.Downloads[i].IP); ok {
			perAS[rec.ASN]++
		}
	}
	type kv struct {
		as geo.ASN
		n  int
	}
	var order []kv
	for as, n := range perAS {
		order = append(order, kv{as, n})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].n > order[j].n })
	var out Figure4
	panels := []*Figure4AS{&out.ASX, &out.ASY}
	for pi := range panels {
		if pi >= len(order) {
			break
		}
		panels[pi].ASN = order[pi].as
	}
	xs := LogSpace(0.1, 100, 25)
	for _, panel := range panels {
		var edge, p2p []float64
		for i := range in.Log.Downloads {
			d := &in.Log.Downloads[i]
			if d.Outcome != protocol.OutcomeCompleted || d.TotalBytes() == 0 {
				continue
			}
			rec, ok := in.lookup(d.IP)
			if !ok || rec.ASN != panel.ASN {
				continue
			}
			mbps := d.SpeedBps() / 1e6
			switch {
			case d.BytesPeers == 0:
				edge = append(edge, mbps)
			case float64(d.BytesPeers) >= 0.5*float64(d.TotalBytes()):
				p2p = append(p2p, mbps)
			}
		}
		ec, pc := NewCDF(edge), NewCDF(p2p)
		panel.EdgeOnly = ec.Points(xs)
		panel.P2PHeavy = pc.Points(xs)
		panel.MedianEdgeMbps = ec.Quantile(0.5)
		panel.MedianP2PMbps = pc.Quantile(0.5)
	}
	return out
}

// Figure5 relates registered file copies to average peer efficiency.
type Figure5 struct {
	Buckets []Bucket // X: copies, Mean/P20/P80: efficiency %
}

// ComputeFigure5 counts DN registrations per file and the per-file average
// peer efficiency, bucketed by copy count.
func ComputeFigure5(in *Input) Figure5 {
	copies := make(map[content.ObjectID]int)
	for i := range in.Log.Registrations {
		copies[in.Log.Registrations[i].Object]++
	}
	effSum := make(map[content.ObjectID]float64)
	effN := make(map[content.ObjectID]int)
	for i := range in.Log.Downloads {
		d := &in.Log.Downloads[i]
		if !d.P2PEnabled || d.TotalBytes() == 0 {
			continue
		}
		effSum[d.Object] += 100 * d.PeerEfficiency()
		effN[d.Object]++
	}
	var xs, ys []float64
	maxCopies := 1.0
	for obj, n := range effN {
		c := float64(copies[obj])
		if c < 1 {
			continue
		}
		xs = append(xs, c)
		ys = append(ys, effSum[obj]/float64(n))
		if c > maxCopies {
			maxCopies = c
		}
	}
	return Figure5{Buckets: BucketizeLog(xs, ys, 1, maxCopies+1, 12)}
}

// Figure6 relates the number of peers the control plane initially returned
// to peer efficiency.
type Figure6 struct {
	// ByPeers[k] aggregates downloads whose first query returned k peers.
	ByPeers []Bucket
}

// ComputeFigure6 groups downloads by PeersReturned.
func ComputeFigure6(in *Input) Figure6 {
	groups := make(map[int][]float64)
	maxK := 0
	for i := range in.Log.Downloads {
		d := &in.Log.Downloads[i]
		if !d.P2PEnabled || d.TotalBytes() == 0 {
			continue
		}
		k := d.PeersReturned
		groups[k] = append(groups[k], 100*d.PeerEfficiency())
		if k > maxK {
			maxK = k
		}
	}
	var out []Bucket
	for k := 0; k <= maxK; k++ {
		g := groups[k]
		if len(g) == 0 {
			continue
		}
		out = append(out, Bucket{
			X: float64(k), N: len(g), Mean: Mean(g),
			P20: Percentile(g, 20), P80: Percentile(g, 80),
		})
	}
	return Figure6{ByPeers: out}
}

// SizeClass is a Figure 7 file-size bucket.
type SizeClass int

// Figure 7 size classes.
const (
	SizeUnder10MB SizeClass = iota
	Size10to100MB
	Size100MBto1GB
	SizeOver1GB
	numSizeClasses
)

func (s SizeClass) String() string {
	switch s {
	case SizeUnder10MB:
		return "<10MB"
	case Size10to100MB:
		return "10-100MB"
	case Size100MBto1GB:
		return "100MB-1GB"
	case SizeOver1GB:
		return ">1GB"
	}
	return "?"
}

func classifySize(size int64) SizeClass {
	switch {
	case size < 10e6:
		return SizeUnder10MB
	case size < 100e6:
		return Size10to100MB
	case size < 1e9:
		return Size100MBto1GB
	default:
		return SizeOver1GB
	}
}

// Figure7 is the pause/termination rate per size class, for infra-only,
// peer-assisted, and all downloads.
type Figure7 struct {
	// PauseRatePct[class][0]=infra-only, [1]=peer-assisted, [2]=all.
	PauseRatePct [numSizeClasses][3]float64
	N            [numSizeClasses][3]int
}

// ComputeFigure7 measures how often downloads are aborted/paused and never
// resumed, by size.
func ComputeFigure7(in *Input) Figure7 {
	var aborted, total [numSizeClasses][3]int
	for i := range in.Log.Downloads {
		d := &in.Log.Downloads[i]
		sc := classifySize(d.Size)
		cols := []int{2}
		if d.P2PEnabled {
			cols = append(cols, 1)
		} else {
			cols = append(cols, 0)
		}
		for _, c := range cols {
			total[sc][c]++
			if d.Outcome == protocol.OutcomeAborted {
				aborted[sc][c]++
			}
		}
	}
	var out Figure7
	for sc := 0; sc < int(numSizeClasses); sc++ {
		for c := 0; c < 3; c++ {
			out.N[sc][c] = total[sc][c]
			if total[sc][c] > 0 {
				out.PauseRatePct[sc][c] = 100 * float64(aborted[sc][c]) / float64(total[sc][c])
			}
		}
	}
	return out
}

// CountryClass classifies a country by how much of one provider's bytes the
// peers served relative to the infrastructure (paper Figure 8).
type CountryClass int

// Figure 8 classes.
const (
	// InfraDominant: infrastructure served more than the peers.
	InfraDominant CountryClass = iota
	// PeersModerate: peers served 50–100% of what the infrastructure did…
	// i.e. infra serves between 50% and 100% of the peers' volume.
	PeersModerate
	// PeersDominant: infrastructure served less than 50% of the peers'
	// volume.
	PeersDominant
)

func (c CountryClass) String() string {
	switch c {
	case InfraDominant:
		return "infra>peers"
	case PeersModerate:
		return "infra 50-100% of peers"
	case PeersDominant:
		return "infra <50% of peers"
	}
	return "?"
}

// Figure8Country is one country's classification.
type Figure8Country struct {
	Country    geo.CountryCode
	BytesInfra int64
	BytesPeers int64
	Class      CountryClass
}

// Figure8 is the per-country contribution map for one provider.
type Figure8 struct {
	CP        content.CPCode
	Countries []Figure8Country
	ClassN    [3]int
}

// ComputeFigure8 aggregates completed downloads of one p2p-enabled provider
// per country.
func ComputeFigure8(in *Input, cp content.CPCode) Figure8 {
	type agg struct{ infra, peers int64 }
	per := make(map[geo.CountryCode]*agg)
	for i := range in.Log.Downloads {
		d := &in.Log.Downloads[i]
		if d.CP != cp || d.Outcome != protocol.OutcomeCompleted {
			continue
		}
		rec, ok := in.lookup(d.IP)
		if !ok {
			continue
		}
		a := per[rec.Country]
		if a == nil {
			a = &agg{}
			per[rec.Country] = a
		}
		a.infra += d.BytesInfra
		a.peers += d.BytesPeers
	}
	out := Figure8{CP: cp}
	for country, a := range per {
		c := Figure8Country{Country: country, BytesInfra: a.infra, BytesPeers: a.peers}
		switch {
		case a.peers == 0 || a.infra > a.peers:
			c.Class = InfraDominant
		case float64(a.infra) >= 0.5*float64(a.peers):
			c.Class = PeersModerate
		default:
			c.Class = PeersDominant
		}
		out.ClassN[c.Class]++
		out.Countries = append(out.Countries, c)
	}
	sort.Slice(out.Countries, func(i, j int) bool {
		return out.Countries[i].Country < out.Countries[j].Country
	})
	return out
}
