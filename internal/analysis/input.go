package analysis

import (
	"net/netip"

	"netsession/internal/accounting"
	"netsession/internal/geo"
	"netsession/internal/trace"
)

// Input bundles everything the analyses read: the log set plus the
// geography and population context (the paper's analyses likewise join the
// control-plane logs with EdgeScape data, §4.1).
type Input struct {
	Log     *accounting.Log
	Pop     *trace.Population
	Catalog *trace.Catalog
	Atlas   *geo.Atlas
	Scape   *geo.EdgeScape
	// ControlPlaneServers is reported in Table 1 (197 in the paper); the
	// simulator models one DN per region.
	ControlPlaneServers int
}

// lookup resolves a logged IP through the geolocation service.
func (in *Input) lookup(ip netip.Addr) (geo.Record, bool) {
	return in.Scape.Lookup(ip)
}

// reportRegion maps a logged IP to its Table 2 report region.
func (in *Input) reportRegion(ip netip.Addr) (geo.ReportRegion, bool) {
	rec, ok := in.lookup(ip)
	if !ok {
		return "", false
	}
	loc := in.Atlas.Location(rec.Location)
	return geo.ReportRegionOf(loc), true
}
