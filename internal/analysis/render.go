package analysis

import (
	"fmt"
	"strings"

	"netsession/internal/geo"
)

// Report renders every table and figure as text, in paper order. The
// experiment harness writes this into EXPERIMENTS.md next to the paper's
// own numbers.
func Report(in *Input, traceDays int) string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	t1 := ComputeTable1(in)
	w("## Table 1 — Overall statistics")
	w("Log entries:          %d", t1.LogEntries)
	w("Number of GUIDs:      %d", t1.GUIDs)
	w("Control plane servers:%d", t1.ControlPlaneServers)
	w("Distinct URLs:        %d", t1.DistinctURLs)
	w("Distinct IPs:         %d", t1.DistinctIPs)
	w("Downloads initiated:  %d", t1.DownloadsInitiated)
	w("Distinct locations:   %d", t1.DistinctLocations)
	w("Distinct ASes:        %d", t1.DistinctASes)
	w("Distinct countries:   %d", t1.DistinctCountries)
	w("")

	w("## Table 2 — Download distribution per customer (%%)")
	header := "Customer        "
	for _, reg := range geo.ReportRegions {
		header += fmt.Sprintf("%15s", string(reg))
	}
	w("%s", header)
	for _, row := range ComputeTable2(in) {
		line := fmt.Sprintf("%-16s", row.Customer)
		for _, reg := range geo.ReportRegions {
			line += fmt.Sprintf("%14.1f%%", row.Share[reg])
		}
		w("%s", line)
	}
	w("")

	t3 := ComputeTable3(in)
	w("## Table 3 — Upload-setting changes")
	w("%-18s %10s %8s %8s %8s", "Uploads initially", "Nodes", "0", "1", ">=2")
	for _, init := range []bool{false, true} {
		name := "Disabled"
		if init {
			name = "Enabled"
		}
		r := t3.Rows[init]
		w("%-18s %10d %7.2f%% %7.2f%% %7.2f%%", name, r.Nodes, r.PctZero, r.PctOne, r.PctTwoPlus)
	}
	w("")

	w("## Table 4 — Peers with uploads enabled per customer")
	for _, row := range ComputeTable4(in) {
		w("%-12s %6.1f%%  (%d peers)", row.Customer, row.PctEnabled, row.Peers)
	}
	w("")

	f2 := ComputeFigure2(in)
	w("## Figure 2 — Peer locations (top 10 bubbles of %d)", len(f2))
	for i, bub := range f2 {
		if i >= 10 {
			break
		}
		w("%-8s %-4s (%.1f,%.1f): %d peers", bub.City, bub.Country, bub.Coord.Lat, bub.Coord.Lon, bub.Peers)
	}
	w("")

	f3a := ComputeFigure3a(in)
	w("## Figure 3a — Request CDF by object size (GB)")
	w("%10s %12s %12s %12s", "size(GB)", "infra-only", "all", "peer-assist")
	for i := range f3a.All {
		w("%10.3f %11.1f%% %11.1f%% %11.1f%%",
			f3a.All[i].X, f3a.InfraOnly[i].Y, f3a.All[i].Y, f3a.PeerAssisted[i].Y)
	}
	w("peer-assisted requests >500MB: %.1f%% (paper: 82%%)", f3a.PctPeerAssistedOver500MB)
	w("")

	f3b := ComputeFigure3b(in)
	w("## Figure 3b — Content popularity (downloads vs rank)")
	for _, rank := range []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000} {
		if rank <= len(f3b.Counts) {
			w("rank %5d: %d downloads", rank, f3b.Counts[rank-1])
		}
	}
	w("fitted power-law exponent: %.2f", f3b.PowerLawSlope())
	w("")

	f3c := ComputeFigure3c(in, traceDays)
	w("## Figure 3c — Bytes served over time (per-day totals, GB)")
	for d := 0; d+24 <= len(f3c.GMT); d += 24 {
		var day float64
		for h := 0; h < 24; h++ {
			day += f3c.GMT[d+h]
		}
		if (d/24)%5 == 0 {
			w("day %2d: %8.1f GB", d/24+1, day/1e9)
		}
	}
	peak, trough := 0.0, -1.0
	for _, v := range f3c.LocalHourOfDay {
		if v > peak {
			peak = v
		}
		if trough < 0 || v < trough {
			trough = v
		}
	}
	if trough > 0 {
		w("local-time diurnal peak/trough ratio: %.2f", peak/trough)
	}
	w("")

	f4 := ComputeFigure4(in)
	w("## Figure 4 — Download speed, edge-only vs >50%% p2p (two largest ASes)")
	for _, panel := range []struct {
		name string
		p    Figure4AS
	}{{"AS X", f4.ASX}, {"AS Y", f4.ASY}} {
		w("%s (AS%d): median edge-only %.2f Mbps, median >50%%-p2p %.2f Mbps",
			panel.name, panel.p.ASN, panel.p.MedianEdgeMbps, panel.p.MedianP2PMbps)
	}
	w("")

	f5 := ComputeFigure5(in)
	w("## Figure 5 — Registered copies vs peer efficiency")
	w("%12s %6s %8s %8s %8s", "copies", "files", "mean", "p20", "p80")
	for _, bkt := range f5.Buckets {
		w("%12.0f %6d %7.1f%% %7.1f%% %7.1f%%", bkt.X, bkt.N, bkt.Mean, bkt.P20, bkt.P80)
	}
	w("")

	f6 := ComputeFigure6(in)
	w("## Figure 6 — Peers initially returned vs peer efficiency")
	w("%6s %8s %8s", "peers", "dls", "mean eff")
	for _, bkt := range f6.ByPeers {
		if int(bkt.X)%2 == 0 || bkt.X < 6 {
			w("%6.0f %8d %7.1f%%", bkt.X, bkt.N, bkt.Mean)
		}
	}
	w("")

	f7 := ComputeFigure7(in)
	w("## Figure 7 — Pause rate by file size")
	w("%-12s %12s %12s %12s", "size", "infra-only", "peer-assist", "all")
	for sc := SizeUnder10MB; sc < numSizeClasses; sc++ {
		w("%-12s %11.1f%% %11.1f%% %11.1f%%", sc,
			f7.PauseRatePct[sc][0], f7.PauseRatePct[sc][1], f7.PauseRatePct[sc][2])
	}
	w("")

	// Figure 8 uses the most p2p-heavy provider (Customer D).
	f8 := ComputeFigure8(in, 104)
	w("## Figure 8 — Peer contributions per country (Customer D)")
	w("infra>peers: %d countries, infra 50-100%% of peers: %d, infra <50%% of peers: %d",
		f8.ClassN[InfraDominant], f8.ClassN[PeersModerate], f8.ClassN[PeersDominant])
	w("")

	ast := ComputeASTraffic(in)
	w("## §6.1 / Figures 9-11 — AS-level traffic")
	w("total p2p bytes: %.2f GB, intra-AS: %.1f%% (paper: 18%%)",
		float64(ast.TotalP2PBytes)/1e9, 100*ast.IntraASFraction())
	f9a := ast.ComputeFigure9a()
	w("Figure 9a: %d ASes with peers; per-AS inter-AS upload CDF:", f9a.ASes)
	for _, pt := range f9a.Points {
		if pt.Y > 0.5 && pt.Y < 99.9 {
			w("  <= %10.0f bytes: %5.1f%% of ASes", pt.X, pt.Y)
		}
	}
	f9b := ast.ComputeFigure9b()
	w("Figure 9b: heavy uploaders: %d ASes carry %.0f%% of bytes (light ASes carry %.1f%%)",
		f9b.HeavyASes, 100-f9b.LightSharePct, f9b.LightSharePct)
	f9c := ast.ComputeFigure9c()
	w("Figure 9c: median IPs per AS — light %.0f, heavy %.0f", f9c.MedianLightIPs, f9c.MedianHeavyIPs)
	f10 := ast.ComputeFigure10()
	w("Figure 10: heavy uploaders' median up/down ratio: %.2f (1.0 = balanced)", f10.HeavyMedianRatio)
	f11 := ast.ComputeFigure11(in.Atlas)
	w("Figure 11: %d heavy pairs, median pairwise imbalance %.2f, %.0f%% of heavy-pair bytes on direct links (paper: 35%%)",
		len(f11.Pairs), f11.MedianRatio, f11.PctDirectBytes)
	w("")

	f12 := ComputeFigure12(in)
	w("## Figure 12 — Secondary-GUID graphs")
	w("graphs (>=3 vertices): %d, non-linear: %.2f%% (paper: 0.6%%)", f12.Graphs, f12.PctNonLinear)
	for c := GraphShortBranch; c < numGraphClasses; c++ {
		w("  %-18s %5.1f%% of non-linear (%d)", c, f12.PctOfNonLinear[c], f12.Count[c])
	}
	w("")

	if sf := ComputeStreamingFigure(in); sf.Sessions > 0 {
		w("## Streaming delivery — startup, rebuffers, deadlines")
		w("sessions: %d", sf.Sessions)
		w("startup delay: mean %.0fms, p50 %dms, p95 %dms",
			sf.StartupMeanMs, sf.StartupP50Ms, sf.StartupP95Ms)
		w("rebuffers: %.1f%% of sessions stalled; %d events, %d ms paused",
			sf.PctWithRebuffer, sf.RebufferEvents, sf.RebufferMs)
		w("deadline misses: %.2f%% of played pieces; %d urgent bytes edge-rescued",
			sf.DeadlineMissPct, sf.EdgeRescueBytes)
		w("")
	}

	h := ComputeHeadlines(in, traceDays)
	w("## Headlines")
	w("p2p-enabled files: %.1f%% of catalog carrying %.1f%% of bytes (paper: 1.7%% / 57.4%%)",
		h.PctFilesP2PEnabled, h.PctBytesP2PFiles)
	w("peer efficiency: mean %.1f%%, byte-weighted %.1f%% (paper mean: 71.4%%)",
		h.MeanPeerEfficiencyPct, h.AggregatePeerEfficiencyPct)
	w("completion: infra-only %.1f%%, peer-assisted %.1f%% (paper: 94%% / 92%%)",
		h.CompletionInfraPct, h.CompletionP2PPct)
	w("system failures: %.2f%% / %.2f%% (paper: 0.1%% / 0.2%%)",
		h.FailSystemInfraPct, h.FailSystemP2PPct)
	w("aborted/paused: %.1f%% / %.1f%% (paper: 3%% / 8%%)", h.AbortInfraPct, h.AbortP2PPct)
	w("mobility: %.1f%% / %.1f%% / %.1f%% of GUIDs in 1/2/>2 ASes (paper: 80.6/13.4/6.0)",
		h.Pct1AS, h.Pct2AS, h.PctMoreAS)
	w("within 10 km: %.1f%% (paper: 77%%)", h.PctWithin10Km)
	w("new control-plane connections per minute: %.1f", h.NewConnectionsPerMinute)

	return b.String()
}
