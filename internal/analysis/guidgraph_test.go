package analysis

import (
	"math/rand"
	"testing"

	"netsession/internal/accounting"
	"netsession/internal/id"
)

// chainLogins builds login records for one GUID whose secondary-GUID window
// evolves through the given sequence of window snapshots.
func loginsFromWindows(g id.GUID, windows [][id.HistoryLen]id.Secondary) []accounting.LoginRecord {
	out := make([]accounting.LoginRecord, 0, len(windows))
	for i, w := range windows {
		out = append(out, accounting.LoginRecord{TimeMs: int64(i), GUID: g, Secondaries: w})
	}
	return out
}

// mkSecs returns n distinct secondaries.
func mkSecs(r *rand.Rand, n int) []id.Secondary {
	out := make([]id.Secondary, n)
	for i := range out {
		out[i] = id.RandSecondary(r)
	}
	return out
}

// windowsFor simulates a history walking a sequence of "current" secondary
// indices over a chain array; -1 entries in rollbackTo reset to a saved
// point. Simpler: build windows directly from explicit chains.
func windowOf(chain []id.Secondary, head int) [id.HistoryLen]id.Secondary {
	var w [id.HistoryLen]id.Secondary
	for i := 0; i < id.HistoryLen; i++ {
		ix := head - i
		if ix >= 0 && ix < len(chain) {
			w[i] = chain[ix]
		}
	}
	return w
}

func classify(t *testing.T, logins []accounting.LoginRecord) GraphClass {
	t.Helper()
	in := &Input{Log: &accounting.Log{Logins: logins}}
	f := ComputeFigure12(in)
	if f.Graphs != 1 {
		t.Fatalf("expected 1 graph, got %d", f.Graphs)
	}
	for c := GraphLinear; c < numGraphClasses; c++ {
		if f.Count[c] == 1 {
			return c
		}
	}
	t.Fatal("no class counted")
	return GraphLinear
}

func TestClassifyLinearChain(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	g := id.RandGUID(r)
	chain := mkSecs(r, 10)
	var windows [][id.HistoryLen]id.Secondary
	for head := 4; head < 10; head++ {
		windows = append(windows, windowOf(chain, head))
	}
	if got := classify(t, loginsFromWindows(g, windows)); got != GraphLinear {
		t.Errorf("linear chain classified as %v", got)
	}
}

func TestClassifyShortBranch(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	g := id.RandGUID(r)
	main := mkSecs(r, 12)
	// A failed update: one secondary hangs off main[5] and is abandoned.
	stub := mkSecs(r, 1)[0]
	branchWindow := [id.HistoryLen]id.Secondary{stub, main[5], main[4], main[3], main[2]}
	var windows [][id.HistoryLen]id.Secondary
	for head := 4; head <= 5; head++ {
		windows = append(windows, windowOf(main, head))
	}
	windows = append(windows, branchWindow)
	for head := 6; head < 12; head++ {
		windows = append(windows, windowOf(main, head))
	}
	if got := classify(t, loginsFromWindows(g, windows)); got != GraphShortBranch {
		t.Errorf("short branch classified as %v", got)
	}
}

func TestClassifyTwoLongBranches(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := id.RandGUID(r)
	// Trunk 0..5; branch A continues 6..10; restore to 5, branch B 6'..10'.
	trunk := mkSecs(r, 6)
	a := append(append([]id.Secondary{}, trunk...), mkSecs(r, 5)...)
	b := append(append([]id.Secondary{}, trunk...), mkSecs(r, 5)...)
	var windows [][id.HistoryLen]id.Secondary
	for head := 4; head < len(a); head++ {
		windows = append(windows, windowOf(a, head))
	}
	for head := 6; head < len(b); head++ {
		windows = append(windows, windowOf(b, head))
	}
	if got := classify(t, loginsFromWindows(g, windows)); got != GraphTwoLong {
		t.Errorf("two long branches classified as %v", got)
	}
}

func TestClassifyManyBranches(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	g := id.RandGUID(r)
	// Re-imaged nightly from trunk[4]: several short branches.
	trunk := mkSecs(r, 5)
	var windows [][id.HistoryLen]id.Secondary
	windows = append(windows, windowOf(trunk, 4))
	for day := 0; day < 4; day++ {
		branch := append(append([]id.Secondary{}, trunk...), mkSecs(r, 2)...)
		for head := 5; head < len(branch); head++ {
			windows = append(windows, windowOf(branch, head))
		}
	}
	if got := classify(t, loginsFromWindows(g, windows)); got != GraphManyBranches {
		t.Errorf("many branches classified as %v", got)
	}
}

func TestClassifyIrregular(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := id.RandGUID(r)
	// Two independent fork points: trunk forks at 3 and the first branch
	// forks again at its own position 6.
	trunk := mkSecs(r, 4)
	b1 := append(append([]id.Secondary{}, trunk...), mkSecs(r, 4)...) // forks at trunk[3]
	b2 := append(append([]id.Secondary{}, trunk...), mkSecs(r, 3)...) // second fork at trunk[3]... need distinct points
	// Make the second fork at b1[6] instead:
	b3 := append(append([]id.Secondary{}, b1[:7]...), mkSecs(r, 3)...)
	var windows [][id.HistoryLen]id.Secondary
	for head := 4; head < len(b1); head++ {
		windows = append(windows, windowOf(b1, head))
	}
	for head := 4; head < len(b2); head++ {
		windows = append(windows, windowOf(b2, head))
	}
	for head := 7; head < len(b3); head++ {
		windows = append(windows, windowOf(b3, head))
	}
	if got := classify(t, loginsFromWindows(g, windows)); got != GraphIrregular {
		t.Errorf("multi-fork graph classified as %v", got)
	}
}

func TestTinyGraphsSkipped(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	g := id.RandGUID(r)
	chain := mkSecs(r, 2)
	w := [id.HistoryLen]id.Secondary{chain[1], chain[0]}
	in := &Input{Log: &accounting.Log{Logins: loginsFromWindows(g, [][id.HistoryLen]id.Secondary{w})}}
	if f := ComputeFigure12(in); f.Graphs != 0 {
		t.Errorf("graph with 2 vertices counted (got %d graphs)", f.Graphs)
	}
}
