package analysis

import (
	"strings"
	"sync"
	"testing"

	"netsession/internal/geo"
	"netsession/internal/sim"
)

var (
	simOnce sync.Once
	simIn   *Input
	simDays int
)

// simInput runs the small scenario once and shares it across tests.
func simInput(t *testing.T) *Input {
	t.Helper()
	simOnce.Do(func() {
		cfg := sim.SmallScenario()
		res, err := sim.Run(cfg)
		if err != nil {
			t.Fatalf("sim: %v", err)
		}
		simDays = cfg.Days
		simIn = &Input{
			Log: res.Log, Pop: res.Pop, Catalog: res.Catalog,
			Atlas: res.Atlas, Scape: res.Scape,
			ControlPlaneServers: geo.NumRegions,
		}
	})
	if simIn == nil {
		t.Skip("sim input unavailable")
	}
	return simIn
}

func TestTable1(t *testing.T) {
	in := simInput(t)
	t1 := ComputeTable1(in)
	if t1.GUIDs != len(in.Pop.Peers) {
		t.Errorf("GUIDs=%d, want %d (every peer logs in)", t1.GUIDs, len(in.Pop.Peers))
	}
	if t1.DistinctIPs < t1.GUIDs {
		t.Errorf("distinct IPs %d below GUID count %d", t1.DistinctIPs, t1.GUIDs)
	}
	if t1.DownloadsInitiated == 0 || t1.DistinctURLs == 0 {
		t.Error("empty download stats")
	}
	if t1.DistinctCountries < 20 {
		t.Errorf("only %d countries", t1.DistinctCountries)
	}
	if t1.LogEntries <= t1.DownloadsInitiated {
		t.Error("log entries should include logins and registrations")
	}
}

func TestTable2Shapes(t *testing.T) {
	in := simInput(t)
	rows := ComputeTable2(in)
	if len(rows) != 11 {
		t.Fatalf("got %d rows, want 10 customers + all", len(rows))
	}
	byName := make(map[string]Table2Row)
	for _, r := range rows {
		sum := 0.0
		for _, v := range r.Share {
			sum += v
		}
		if r.Total > 0 && (sum < 99 || sum > 101) {
			t.Errorf("%s shares sum to %.1f", r.Customer, sum)
		}
		byName[r.Customer] = r
	}
	// Customer F is 100% Europe in Table 2.
	if f := byName["Customer F"]; f.Share[geo.RegionEurope] < 95 {
		t.Errorf("Customer F Europe share %.1f, want ≈100", f.Share[geo.RegionEurope])
	}
	// All-customers Europe ≈ 46%.
	if all := byName["All customers"]; all.Share[geo.RegionEurope] < 36 || all.Share[geo.RegionEurope] > 56 {
		t.Errorf("All-customers Europe share %.1f, want ≈46", all.Share[geo.RegionEurope])
	}
	// Customer J is US-heavy.
	if j := byName["Customer J"]; j.Share[geo.RegionUSEast]+j.Share[geo.RegionUSWest] < 45 {
		t.Errorf("Customer J US share %.1f, want ≈66",
			j.Share[geo.RegionUSEast]+j.Share[geo.RegionUSWest])
	}
}

func TestTable3Shapes(t *testing.T) {
	in := simInput(t)
	t3 := ComputeTable3(in)
	dis, en := t3.Rows[false], t3.Rows[true]
	if dis.Nodes == 0 || en.Nodes == 0 {
		t.Fatal("empty cohorts")
	}
	// ≈31% enabled overall.
	frac := float64(en.Nodes) / float64(en.Nodes+dis.Nodes)
	if frac < 0.26 || frac > 0.38 {
		t.Errorf("enabled cohort fraction %.3f, want ≈0.31", frac)
	}
	// Users overwhelmingly keep the default (paper: 99.96% / 98.11%).
	if dis.PctZero < 99.5 {
		t.Errorf("disabled-default keep rate %.2f%%, want ≈99.96%%", dis.PctZero)
	}
	if en.PctZero < 96.5 || en.PctZero > 99.9 {
		t.Errorf("enabled-default keep rate %.2f%%, want ≈98.11%%", en.PctZero)
	}
	if en.PctOne < dis.PctOne {
		t.Error("enabled-default users change more often than disabled-default users in the paper")
	}
}

func TestTable4Shapes(t *testing.T) {
	in := simInput(t)
	rows := ComputeTable4(in)
	got := make(map[string]float64)
	for _, r := range rows {
		got[r.Customer] = r.PctEnabled
	}
	// Spot-check against the Table 4 targets.
	if v := got["Customer D"]; v < 88 || v > 98 {
		t.Errorf("Customer D enabled %.1f%%, want ≈94%%", v)
	}
	if v := got["Customer I"]; v < 85 || v > 96 {
		t.Errorf("Customer I enabled %.1f%%, want ≈91%%", v)
	}
	if v := got["Customer A"]; v > 3 {
		t.Errorf("Customer A enabled %.1f%%, want <1%%", v)
	}
}

func TestFigure2(t *testing.T) {
	in := simInput(t)
	bubbles := ComputeFigure2(in)
	if len(bubbles) < 100 {
		t.Fatalf("only %d locations", len(bubbles))
	}
	total := 0
	for _, b := range bubbles {
		total += b.Peers
	}
	if total != len(in.Pop.Peers) {
		t.Errorf("bubble total %d != population %d", total, len(in.Pop.Peers))
	}
	if bubbles[0].Peers < bubbles[len(bubbles)-1].Peers {
		t.Error("bubbles not sorted by size")
	}
}

func TestFigure3a(t *testing.T) {
	in := simInput(t)
	f := ComputeFigure3a(in)
	if f.PctPeerAssistedOver500MB < 70 {
		t.Errorf("peer-assisted >500MB = %.1f%%, want ≈82%%", f.PctPeerAssistedOver500MB)
	}
	// Peer-assisted CDF must sit to the right of (below) the infra-only
	// CDF at mid sizes: larger objects.
	for i, pt := range f.All {
		if pt.X > 0.2 && pt.X < 1 {
			if f.PeerAssisted[i].Y > f.InfraOnly[i].Y {
				t.Errorf("at %.2fGB peer-assisted CDF (%.1f%%) above infra-only (%.1f%%)",
					pt.X, f.PeerAssisted[i].Y, f.InfraOnly[i].Y)
			}
		}
	}
}

func TestFigure3b(t *testing.T) {
	in := simInput(t)
	f := ComputeFigure3b(in)
	if len(f.Counts) < 500 {
		t.Fatalf("only %d distinct objects", len(f.Counts))
	}
	slope := f.PowerLawSlope()
	if slope < 0.4 || slope > 1.6 {
		t.Errorf("power-law exponent %.2f, want ≈0.9", slope)
	}
}

func TestFigure3c(t *testing.T) {
	in := simInput(t)
	f := ComputeFigure3c(in, simDays)
	var total float64
	for _, v := range f.GMT {
		total += v
	}
	if total == 0 {
		t.Fatal("no bytes over time")
	}
	peak, trough := 0.0, -1.0
	for _, v := range f.LocalHourOfDay {
		if v > peak {
			peak = v
		}
		if trough < 0 || v < trough {
			trough = v
		}
	}
	if trough <= 0 || peak/trough < 1.3 {
		t.Errorf("diurnal peak/trough %.2f, want clearly diurnal (>1.3)", peak/trough)
	}
}

func TestFigure4(t *testing.T) {
	in := simInput(t)
	f := ComputeFigure4(in)
	for _, p := range []Figure4AS{f.ASX, f.ASY} {
		if p.MedianEdgeMbps <= 0 {
			t.Fatal("no edge-only speed samples in a top AS")
		}
		// §5.2: "although the peer-assisted downloads are somewhat slower,
		// the speed is still quite high".
		if p.MedianP2PMbps > 0 {
			if p.MedianP2PMbps > p.MedianEdgeMbps*1.2 {
				t.Errorf("AS%d: p2p median %.2f faster than edge %.2f",
					p.ASN, p.MedianP2PMbps, p.MedianEdgeMbps)
			}
			if p.MedianP2PMbps < p.MedianEdgeMbps/20 {
				t.Errorf("AS%d: p2p median %.2f absurdly slow vs %.2f",
					p.ASN, p.MedianP2PMbps, p.MedianEdgeMbps)
			}
		}
	}
}

func TestFigure5Rises(t *testing.T) {
	in := simInput(t)
	f := ComputeFigure5(in)
	if len(f.Buckets) < 3 {
		t.Fatalf("only %d buckets", len(f.Buckets))
	}
	first, last := f.Buckets[0], f.Buckets[len(f.Buckets)-1]
	if last.Mean <= first.Mean {
		t.Errorf("efficiency does not rise with copies: %.1f%% (x=%.0f) -> %.1f%% (x=%.0f)",
			first.Mean, first.X, last.Mean, last.X)
	}
}

func TestFigure6Rises(t *testing.T) {
	in := simInput(t)
	f := ComputeFigure6(in)
	if len(f.ByPeers) < 4 {
		t.Fatalf("only %d groups", len(f.ByPeers))
	}
	// Efficiency with many peers must clearly beat efficiency with none.
	lowest, highest := f.ByPeers[0], f.ByPeers[len(f.ByPeers)-1]
	if highest.Mean <= lowest.Mean {
		t.Errorf("efficiency does not rise with peers returned: %.1f%% (k=%.0f) -> %.1f%% (k=%.0f)",
			lowest.Mean, lowest.X, highest.Mean, highest.X)
	}
}

func TestFigure7LargerFilesPauseMore(t *testing.T) {
	in := simInput(t)
	f := ComputeFigure7(in)
	allSmall := f.PauseRatePct[SizeUnder10MB][2]
	allLarge := f.PauseRatePct[SizeOver1GB][2]
	if f.N[SizeOver1GB][2] > 50 && allLarge <= allSmall {
		t.Errorf("large files pause less than small: %.1f%% vs %.1f%%", allLarge, allSmall)
	}
}

func TestFigure8(t *testing.T) {
	in := simInput(t)
	f := ComputeFigure8(in, 104) // Customer D, heavily p2p-enabled
	if len(f.Countries) < 10 {
		t.Fatalf("only %d countries", len(f.Countries))
	}
	if f.ClassN[InfraDominant]+f.ClassN[PeersModerate]+f.ClassN[PeersDominant] != len(f.Countries) {
		t.Error("class counts do not partition countries")
	}
}

func TestASTrafficShapes(t *testing.T) {
	in := simInput(t)
	ast := ComputeASTraffic(in)
	if ast.TotalP2PBytes == 0 {
		t.Fatal("no p2p traffic")
	}
	intra := ast.IntraASFraction()
	if intra <= 0.02 || intra > 0.6 {
		t.Errorf("intra-AS fraction %.3f, want noticeable (paper: 0.18)", intra)
	}
	f9b := ast.ComputeFigure9b()
	if f9b.HeavyASes == 0 {
		t.Fatal("no heavy uploaders")
	}
	// Heavy uploaders are a minority of ASes carrying ≈90% of bytes.
	if f9b.HeavyASes*2 > ast.ASesWithPeers {
		t.Errorf("heavy uploaders %d not a minority of %d", f9b.HeavyASes, ast.ASesWithPeers)
	}
	if f9b.LightSharePct > 25 {
		t.Errorf("light uploaders carry %.1f%%, want ≈10%%", f9b.LightSharePct)
	}
	f9c := ast.ComputeFigure9c()
	if f9c.MedianHeavyIPs <= f9c.MedianLightIPs {
		t.Errorf("heavy uploaders should contain more peers: %.0f vs %.0f",
			f9c.MedianHeavyIPs, f9c.MedianLightIPs)
	}
	f10 := ast.ComputeFigure10()
	if f10.HeavyMedianRatio < 0.2 || f10.HeavyMedianRatio > 5 {
		t.Errorf("heavy uploaders' up/down ratio %.2f, want roughly balanced", f10.HeavyMedianRatio)
	}
	f11 := ast.ComputeFigure11(in.Atlas)
	if len(f11.Pairs) == 0 {
		t.Fatal("no heavy pairs")
	}
	if f11.PctDirectBytes <= 0 {
		t.Error("no heavy-pair bytes on direct links")
	}
}

func TestFigure12Shapes(t *testing.T) {
	in := simInput(t)
	f := ComputeFigure12(in)
	if f.Graphs < 1000 {
		t.Fatalf("only %d graphs", f.Graphs)
	}
	if f.PctNonLinear < 0.1 || f.PctNonLinear > 2.5 {
		t.Errorf("non-linear share %.2f%%, want ≈0.6%%", f.PctNonLinear)
	}
	nonLinear := f.Graphs - f.Count[GraphLinear]
	if nonLinear > 3 && f.Count[GraphShortBranch] == 0 {
		t.Error("no short-branch graphs despite non-linear population")
	}
}

func TestHeadlines(t *testing.T) {
	in := simInput(t)
	h := ComputeHeadlines(in, simDays)
	if h.PctFilesP2PEnabled < 1 || h.PctFilesP2PEnabled > 3 {
		t.Errorf("p2p file share %.2f%%, want ≈1.7%%", h.PctFilesP2PEnabled)
	}
	if h.PctBytesP2PFiles < 35 || h.PctBytesP2PFiles > 75 {
		t.Errorf("p2p byte share %.1f%%, want ≈57%%", h.PctBytesP2PFiles)
	}
	if h.CompletionInfraPct < 85 || h.CompletionInfraPct > 99 {
		t.Errorf("infra completion %.1f%%, want ≈94%%", h.CompletionInfraPct)
	}
	if h.CompletionP2PPct >= h.CompletionInfraPct {
		t.Errorf("p2p completion %.1f%% should trail infra %.1f%% slightly",
			h.CompletionP2PPct, h.CompletionInfraPct)
	}
	if h.AbortP2PPct <= h.AbortInfraPct {
		t.Errorf("p2p aborts %.1f%% should exceed infra %.1f%% (larger files)",
			h.AbortP2PPct, h.AbortInfraPct)
	}
	// The 10-day small scenario observes fewer logins per GUID than the
	// paper's month, so some movers never show their second AS; observed
	// single-AS share sits a few points above the ground-truth 80.6%.
	if h.Pct1AS < 75 || h.Pct1AS > 92 {
		t.Errorf("1-AS share %.1f%%, want ≈80.6%% (+observation slack)", h.Pct1AS)
	}
	if h.PctWithin10Km < 68 || h.PctWithin10Km > 93 {
		t.Errorf("within-10km %.1f%%, want ≈77%% (+observation slack)", h.PctWithin10Km)
	}
}

func TestReportRenders(t *testing.T) {
	in := simInput(t)
	rep := Report(in, simDays)
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Table 4",
		"Figure 2", "Figure 3a", "Figure 3b", "Figure 3c", "Figure 4",
		"Figure 5", "Figure 6", "Figure 7", "Figure 8", "Figure 9a",
		"Figure 9b", "Figure 9c", "Figure 10", "Figure 11", "Figure 12",
		"Headlines",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(rep) < 2000 {
		t.Errorf("report suspiciously short: %d bytes", len(rep))
	}
}
