package analysis

import "sort"

// StreamingFigure summarizes the deadline-driven delivery metrics across a
// log set — the streaming analog of the paper's quality-of-service figures
// (startup delay in place of first-byte latency, rebuffers in place of
// pauses).
type StreamingFigure struct {
	Sessions int
	// Startup-delay distribution, milliseconds.
	StartupMeanMs float64
	StartupP50Ms  int64
	StartupP95Ms  int64
	// Rebuffering.
	PctWithRebuffer float64 // sessions with at least one stall
	RebufferEvents  int64
	RebufferMs      int64
	// Deadlines.
	DeadlineMissPct float64 // of all played pieces
	EdgeRescueBytes int64
}

// ComputeStreamingFigure folds every streaming download in the log. Sessions
// is zero when the scenario had no streams; callers gate rendering on that.
func ComputeStreamingFigure(in *Input) StreamingFigure {
	var f StreamingFigure
	var startups []int64
	var startupSum, misses, played int64
	for i := range in.Log.Downloads {
		st := in.Log.Downloads[i].Stream
		if st == nil {
			continue
		}
		f.Sessions++
		startups = append(startups, st.StartupDelayMs)
		startupSum += st.StartupDelayMs
		if st.RebufferCount > 0 {
			f.PctWithRebuffer++
		}
		f.RebufferEvents += st.RebufferCount
		f.RebufferMs += st.RebufferMs
		misses += st.DeadlineMisses
		played += st.PiecesPlayed
		f.EdgeRescueBytes += st.EdgeRescueBytes
	}
	if f.Sessions == 0 {
		return f
	}
	sort.Slice(startups, func(i, j int) bool { return startups[i] < startups[j] })
	f.StartupMeanMs = float64(startupSum) / float64(f.Sessions)
	f.StartupP50Ms = startups[len(startups)/2]
	f.StartupP95Ms = startups[len(startups)*95/100]
	f.PctWithRebuffer = 100 * f.PctWithRebuffer / float64(f.Sessions)
	if played > 0 {
		f.DeadlineMissPct = 100 * float64(misses) / float64(played)
	}
	return f
}
