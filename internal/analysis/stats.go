// Package analysis computes every table and figure of the paper's
// evaluation (Sections 4–6) from a NetSession log set — whether that log
// came from the live control plane or from the simulator. Each Table*/
// Figure* function returns a structured result; render.go turns results
// into the text blocks EXPERIMENTS.md records.
package analysis

import (
	"math"
	"sort"
)

// CDF is an empirical cumulative distribution over float64 samples.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied and sorted).
func NewCDF(samples []float64) *CDF {
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the sample count.
func (c *CDF) N() int { return len(c.sorted) }

// FractionBelow returns P(X <= x).
func (c *CDF) FractionBelow(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	ix := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(ix) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (0 <= q <= 1).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	ix := int(q * float64(len(c.sorted)-1))
	return c.sorted[ix]
}

// Points samples the CDF at the given x values, returning P(X <= x) for
// each — the series a plot would draw.
func (c *CDF) Points(xs []float64) []Point {
	out := make([]Point, len(xs))
	for i, x := range xs {
		out[i] = Point{X: x, Y: 100 * c.FractionBelow(x)}
	}
	return out
}

// Point is one (x, y) pair of a rendered series.
type Point struct {
	X float64
	Y float64
}

// LogSpace returns n log-spaced values from lo to hi inclusive.
func LogSpace(lo, hi float64, n int) []float64 {
	if n < 2 || lo <= 0 || hi <= lo {
		return []float64{lo, hi}
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := 0; i < n; i++ {
		out[i] = v
		v *= ratio
	}
	return out
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Percentile returns the p-th percentile (p in [0,100]) of xs.
func Percentile(xs []float64, p float64) float64 {
	return NewCDF(xs).Quantile(p / 100)
}

// Bucket is a generic aggregation bucket with mean and spread.
type Bucket struct {
	Label string
	X     float64 // representative x (e.g. bucket center)
	N     int
	Mean  float64
	P20   float64
	P80   float64
}

// BucketizeLog groups (x, y) samples into log-spaced x buckets and reports
// the mean and 20th/80th percentiles of y per bucket — the error-bar format
// of Figures 5 and 6.
func BucketizeLog(xs, ys []float64, lo, hi float64, nBuckets int) []Bucket {
	if len(xs) != len(ys) || nBuckets < 1 || lo <= 0 || hi <= lo {
		return nil
	}
	edges := LogSpace(lo, hi, nBuckets+1)
	groups := make([][]float64, nBuckets)
	for i, x := range xs {
		if x < lo || x > hi {
			continue
		}
		b := sort.SearchFloat64s(edges, x) - 1
		if b < 0 {
			b = 0
		}
		if b >= nBuckets {
			b = nBuckets - 1
		}
		groups[b] = append(groups[b], ys[i])
	}
	var out []Bucket
	for b, g := range groups {
		if len(g) == 0 {
			continue
		}
		out = append(out, Bucket{
			X:    math.Sqrt(edges[b] * edges[b+1]),
			N:    len(g),
			Mean: Mean(g),
			P20:  Percentile(g, 20),
			P80:  Percentile(g, 80),
		})
	}
	return out
}
