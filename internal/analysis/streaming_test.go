package analysis

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// synthDownloads fabricates a deterministic, geo-annotated download set with
// peer contributions spanning several regions and ASes.
func synthDownloads(n int, seed int64) []OfflineDownload {
	rng := rand.New(rand.NewSource(seed))
	regions := []string{"NA-East", "NA-West", "EU-West", "AS-NEA", "OC"}
	countries := []string{"US", "US", "DE", "JP", "AU"}
	out := make([]OfflineDownload, 0, n)
	for i := 0; i < n; i++ {
		ri := rng.Intn(len(regions))
		d := OfflineDownload{
			GUID:    fmt.Sprintf("guid-%04x", rng.Intn(n/2+1)),
			Country: countries[ri],
			ASN:     uint32(100 + rng.Intn(40)),
			Region:  regions[ri],
			URLHash: fmt.Sprintf("url-%03d", rng.Intn(200)),
			Size:    int64(rng.Intn(1 << 20)),
			StartMs: int64(i) * 1000,
			EndMs:   int64(i)*1000 + int64(rng.Intn(60_000)),
		}
		d.P2PEnabled = rng.Intn(3) > 0
		switch rng.Intn(10) {
		case 0:
			d.Outcome = "aborted"
		case 1:
			d.Outcome = "failed-system"
		default:
			d.Outcome = "completed"
		}
		d.BytesInfra = int64(rng.Intn(1 << 20))
		if d.P2PEnabled {
			nPeers := rng.Intn(4)
			for p := 0; p < nPeers; p++ {
				pi := rng.Intn(len(regions))
				pc := OfflineContribution{
					GUID:    fmt.Sprintf("guid-%04x", rng.Intn(n/2+1)),
					Country: countries[pi],
					ASN:     uint32(100 + rng.Intn(40)),
					Region:  regions[pi],
					Bytes:   int64(rng.Intn(1 << 18)),
				}
				d.FromPeers = append(d.FromPeers, pc)
				d.BytesPeers += pc.Bytes
			}
		}
		out = append(out, d)
	}
	return out
}

// requireEquivalent asserts the streaming/offline equivalence contract:
// count- and byte-derived metrics match exactly (floats to within float
// summation-order noise), cardinalities to the sketch's error budget.
func requireEquivalent(t *testing.T, off OfflineSummary, st StreamingSummary) {
	t.Helper()
	if int64(off.Downloads) != st.Downloads {
		t.Errorf("Downloads: offline %d, streaming %d", off.Downloads, st.Downloads)
	}
	if off.Countries != st.Countries || off.ASes != st.ASes {
		t.Errorf("geo dims: offline (%d countries, %d ASes), streaming (%d, %d)",
			off.Countries, off.ASes, st.Countries, st.ASes)
	}
	if off.HeavyASes != st.HeavyASes {
		t.Errorf("HeavyASes: offline %d, streaming %d", off.HeavyASes, st.HeavyASes)
	}
	closeEnough := func(name string, a, b float64) {
		t.Helper()
		if a == b {
			return
		}
		denom := math.Max(math.Abs(a), math.Abs(b))
		if math.Abs(a-b)/denom > 1e-9 {
			t.Errorf("%s: offline %v, streaming %v", name, a, b)
		}
	}
	closeEnough("CompletionInfraPct", off.CompletionInfraPct, st.CompletionInfraPct)
	closeEnough("CompletionP2PPct", off.CompletionP2PPct, st.CompletionP2PPct)
	closeEnough("AbortInfraPct", off.AbortInfraPct, st.AbortInfraPct)
	closeEnough("AbortP2PPct", off.AbortP2PPct, st.AbortP2PPct)
	closeEnough("PctBytesP2PFiles", off.PctBytesP2PFiles, st.PctBytesP2PFiles)
	closeEnough("MeanPeerEfficiencyPct", off.MeanPeerEfficiencyPct, st.MeanPeerEfficiencyPct)
	closeEnough("AggregatePeerEfficiencyPct", off.AggregatePeerEfficiencyPct, st.AggregatePeerEfficiencyPct)
	closeEnough("IntraASPct", off.IntraASPct, st.IntraASPct)
	closeEnough("HeavySharePct", off.HeavySharePct, st.HeavySharePct)
	sketchClose := func(name string, exact int, est float64) {
		t.Helper()
		if exact == 0 {
			if est != 0 {
				t.Errorf("%s: offline 0, streaming estimate %.1f", name, est)
			}
			return
		}
		if math.Abs(est-float64(exact))/float64(exact) > 0.02 {
			t.Errorf("%s: offline %d, streaming estimate %.1f (>2%% off)", name, exact, est)
		}
	}
	sketchClose("DistinctGUIDs", off.DistinctGUIDs, st.ActiveGUIDs)
	sketchClose("DistinctURLs", off.DistinctURLs, st.DistinctURLs)
}

func TestStreamingEquivalenceSingleShard(t *testing.T) {
	dls := synthDownloads(20_000, 7)
	off := SummarizeOffline(dls)
	s := NewStreamingSummarizer(1)
	for i := range dls {
		s.Observe(&dls[i])
	}
	requireEquivalent(t, off, s.Snapshot())
}

func TestStreamingEquivalenceSharded(t *testing.T) {
	dls := synthDownloads(20_000, 11)
	off := SummarizeOffline(dls)
	s := NewStreamingSummarizer(8)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(dls); i += 4 {
				s.Observe(&dls[i])
			}
		}(w)
	}
	wg.Wait()
	requireEquivalent(t, off, s.Snapshot())
}

func TestStreamingRegionAggregates(t *testing.T) {
	dls := synthDownloads(5_000, 3)
	s := NewStreamingSummarizer(4)
	var wantInfra, wantPeers int64
	perRegionPeers := map[string]int64{}
	uploadedTotal := int64(0)
	for i := range dls {
		d := &dls[i]
		s.Observe(d)
		wantInfra += d.BytesInfra
		wantPeers += d.BytesPeers
		perRegionPeers[d.Region] += d.BytesPeers
		for _, pc := range d.FromPeers {
			uploadedTotal += pc.Bytes
		}
	}
	sum := s.Snapshot()
	if sum.BytesInfra != wantInfra || sum.BytesPeers != wantPeers {
		t.Fatalf("byte totals: got (%d, %d), want (%d, %d)",
			sum.BytesInfra, sum.BytesPeers, wantInfra, wantPeers)
	}
	wantOffload := 100 * float64(wantPeers) / float64(wantInfra+wantPeers)
	if math.Abs(sum.OffloadPct-wantOffload) > 1e-9 {
		t.Errorf("OffloadPct %.6f, want %.6f", sum.OffloadPct, wantOffload)
	}
	var regionPeers, regionUploaded, matrixTotal int64
	for _, r := range sum.Regions {
		if r.BytesPeers != perRegionPeers[r.Region] {
			t.Errorf("region %s peer bytes %d, want %d", r.Region, r.BytesPeers, perRegionPeers[r.Region])
		}
		regionPeers += r.BytesPeers
		regionUploaded += r.BytesUploaded
	}
	for _, row := range sum.RegionMatrix {
		for _, b := range row {
			matrixTotal += b
		}
	}
	if regionPeers != wantPeers {
		t.Errorf("per-region peer bytes sum %d, want %d", regionPeers, wantPeers)
	}
	// Every uploaded byte is attributed to exactly one (from, to) matrix cell
	// and one uploading region.
	if regionUploaded != uploadedTotal || matrixTotal != uploadedTotal {
		t.Errorf("upload attribution: regions %d, matrix %d, want %d",
			regionUploaded, matrixTotal, uploadedTotal)
	}
	if sum.IntraASBytes+sum.InterASBytes != uploadedTotal {
		t.Errorf("AS split %d+%d != %d", sum.IntraASBytes, sum.InterASBytes, uploadedTotal)
	}
}

func TestStreamingSummaryMergeFleet(t *testing.T) {
	all := synthDownloads(12_000, 19)
	// Split the log across two "control planes" and merge their summaries;
	// the fleet view must match one summarizer that saw everything.
	s1, s2, whole := NewStreamingSummarizer(2), NewStreamingSummarizer(2), NewStreamingSummarizer(2)
	for i := range all {
		whole.Observe(&all[i])
		if i%2 == 0 {
			s1.Observe(&all[i])
		} else {
			s2.Observe(&all[i])
		}
	}
	// Round-trip each part through JSON the way the monitor scrapes it.
	var a, b StreamingSummary
	for _, rt := range []struct {
		src StreamingSummary
		dst *StreamingSummary
	}{{s1.Snapshot(), &a}, {s2.Snapshot(), &b}} {
		raw, err := json.Marshal(rt.src)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(raw, rt.dst); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Merge(&b); err != nil {
		t.Fatal(err)
	}
	want := whole.Snapshot()
	if a.Downloads != want.Downloads || a.BytesPeers != want.BytesPeers ||
		a.IntraASBytes != want.IntraASBytes || a.InterASBytes != want.InterASBytes {
		t.Fatalf("merged totals diverge: got (%d dl, %d peer, %d intra, %d inter), want (%d, %d, %d, %d)",
			a.Downloads, a.BytesPeers, a.IntraASBytes, a.InterASBytes,
			want.Downloads, want.BytesPeers, want.IntraASBytes, want.InterASBytes)
	}
	if a.ActiveGUIDs != want.ActiveGUIDs {
		t.Errorf("sketch union: merged %.1f, whole %.1f (must be identical registers)",
			a.ActiveGUIDs, want.ActiveGUIDs)
	}
	if a.Countries != want.Countries || a.ASes != want.ASes || a.HeavyASes != want.HeavyASes {
		t.Errorf("merged dims (%d, %d, %d) != whole (%d, %d, %d)",
			a.Countries, a.ASes, a.HeavyASes, want.Countries, want.ASes, want.HeavyASes)
	}
	if len(a.Regions) != len(want.Regions) {
		t.Fatalf("merged regions %d != whole %d", len(a.Regions), len(want.Regions))
	}
	for i := range a.Regions {
		if a.Regions[i] != want.Regions[i] {
			t.Errorf("region %s: merged %+v != whole %+v",
				a.Regions[i].Region, a.Regions[i], want.Regions[i])
		}
	}
}

func TestStreamingUnknownRegionBucket(t *testing.T) {
	s := NewStreamingSummarizer(1)
	s.Observe(&OfflineDownload{GUID: "g", URLHash: "u", BytesInfra: 10, Outcome: "completed"})
	sum := s.Snapshot()
	if len(sum.Regions) != 1 || sum.Regions[0].Region != RegionUnknown {
		t.Fatalf("unannotated record regions = %+v, want one %q bucket", sum.Regions, RegionUnknown)
	}
}

func TestStreamingRenderMentionsHeadlines(t *testing.T) {
	dls := synthDownloads(1_000, 5)
	s := NewStreamingSummarizer(2)
	for i := range dls {
		s.Observe(&dls[i])
	}
	out := s.Snapshot().Render()
	for _, want := range []string{"offload:", "intra-AS", "region", "NA-East"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render() missing %q:\n%s", want, out)
		}
	}
}
