package analysis

import "sync"

// ShardedOfflineAccumulator is the concurrency-safe front of the offline
// summary: records are routed to one of N independently locked
// OfflineAccumulators by GUID hash (the same partitioning the PR-6
// streaming summarizer uses), so a parallel segment pass aggregates
// without a global mutex and without materializing a download slice.
// Summary() merges the shards into one accumulator and derives the
// summary; the shard states are left intact, so observation may continue.
//
// Routing by GUID — not by arrival order — makes the per-shard record
// multisets a pure function of the input set. Every count-, set- and
// sort-derived output is therefore identical to a sequential
// SummarizeOffline pass; float sums agree to within accumulation-order
// rounding (see OfflineAccumulator.Merge).
type ShardedOfflineAccumulator struct {
	shards []offlineShard
}

type offlineShard struct {
	mu  sync.Mutex
	acc *OfflineAccumulator
	fig *OfflineFigures
	// pad the struct to a cache line so neighboring shard locks don't
	// false-share under parallel Add storms.
	_ [24]byte
}

// NewShardedOfflineAccumulator creates an accumulator with the given shard
// count (values below 1 select 1). When figures is true each shard also
// feeds an OfflineFigures, retrievable from Figures().
func NewShardedOfflineAccumulator(shards int, figures bool) *ShardedOfflineAccumulator {
	if shards < 1 {
		shards = 1
	}
	s := &ShardedOfflineAccumulator{shards: make([]offlineShard, shards)}
	for i := range s.shards {
		s.shards[i].acc = NewOfflineAccumulator()
		if figures {
			s.shards[i].fig = NewOfflineFigures()
		}
	}
	return s
}

// Add folds one record in. Safe for concurrent use; records of the same
// GUID land on the same shard.
func (s *ShardedOfflineAccumulator) Add(d *OfflineDownload) {
	sh := &s.shards[fnv64a(d.GUID)%uint64(len(s.shards))]
	sh.mu.Lock()
	sh.acc.Add(d)
	if sh.fig != nil {
		sh.fig.Add(d)
	}
	sh.mu.Unlock()
}

// Records returns how many downloads have been added across all shards.
func (s *ShardedOfflineAccumulator) Records() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += sh.acc.Records()
		sh.mu.Unlock()
	}
	return n
}

// Summary merges the shards and derives the offline summary.
func (s *ShardedOfflineAccumulator) Summary() OfflineSummary {
	merged := NewOfflineAccumulator()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		merged.Merge(sh.acc)
		sh.mu.Unlock()
	}
	return merged.Summary()
}

// Figures merges and returns the streaming figure passes, or nil when the
// accumulator was built without them.
func (s *ShardedOfflineAccumulator) Figures() *OfflineFigures {
	if s.shards[0].fig == nil {
		return nil
	}
	merged := NewOfflineFigures()
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		merged.Merge(sh.fig)
		sh.mu.Unlock()
	}
	return merged
}
