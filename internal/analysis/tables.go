package analysis

import (
	"net/netip"
	"sort"

	"netsession/internal/content"
	"netsession/internal/geo"
	"netsession/internal/id"
	"netsession/internal/trace"
)

// Table1 is the overall statistics of the data set (paper Table 1).
type Table1 struct {
	LogEntries          int
	GUIDs               int
	ControlPlaneServers int
	DistinctURLs        int
	DistinctIPs         int
	DownloadsInitiated  int
	DistinctLocations   int
	DistinctASes        int
	DistinctCountries   int
}

// ComputeTable1 derives Table 1 from the logs.
func ComputeTable1(in *Input) Table1 {
	guids := make(map[id.GUID]bool)
	ips := make(map[netip.Addr]bool)
	urls := make(map[string]bool)
	locs := make(map[geo.LocationID]bool)
	ases := make(map[geo.ASN]bool)
	countries := make(map[geo.CountryCode]bool)
	note := func(ip netip.Addr) {
		if !ip.IsValid() {
			return
		}
		ips[ip] = true
		if rec, ok := in.lookup(ip); ok {
			locs[rec.Location] = true
			ases[rec.ASN] = true
			countries[rec.Country] = true
		}
	}
	for i := range in.Log.Logins {
		l := &in.Log.Logins[i]
		guids[l.GUID] = true
		note(l.IP)
	}
	for i := range in.Log.Downloads {
		d := &in.Log.Downloads[i]
		guids[d.GUID] = true
		urls[d.URLHash] = true
		note(d.IP)
		for _, pc := range d.FromPeers {
			note(pc.IP)
		}
	}
	return Table1{
		LogEntries:          in.Log.Entries(),
		GUIDs:               len(guids),
		ControlPlaneServers: in.ControlPlaneServers,
		DistinctURLs:        len(urls),
		DistinctIPs:         len(ips),
		DownloadsInitiated:  len(in.Log.Downloads),
		DistinctLocations:   len(locs),
		DistinctASes:        len(ases),
		DistinctCountries:   len(countries),
	}
}

// Table2Row is one customer's regional download distribution in percent.
type Table2Row struct {
	Customer string
	Share    map[geo.ReportRegion]float64
	Total    int
}

// ComputeTable2 reproduces Table 2: the global distribution of downloads
// for the ten largest content providers, plus the all-customers row.
func ComputeTable2(in *Input) []Table2Row {
	counts := make(map[content.CPCode]map[geo.ReportRegion]int)
	totals := make(map[content.CPCode]int)
	allRegion := make(map[geo.ReportRegion]int)
	allTotal := 0
	for i := range in.Log.Downloads {
		d := &in.Log.Downloads[i]
		region, ok := in.reportRegion(d.IP)
		if !ok {
			continue
		}
		if counts[d.CP] == nil {
			counts[d.CP] = make(map[geo.ReportRegion]int)
		}
		counts[d.CP][region]++
		totals[d.CP]++
		allRegion[region]++
		allTotal++
	}
	var out []Table2Row
	for _, cust := range trace.Customers {
		row := Table2Row{Customer: cust.Name, Share: make(map[geo.ReportRegion]float64), Total: totals[cust.CP]}
		for _, reg := range geo.ReportRegions {
			if t := totals[cust.CP]; t > 0 {
				row.Share[reg] = 100 * float64(counts[cust.CP][reg]) / float64(t)
			}
		}
		out = append(out, row)
	}
	all := Table2Row{Customer: "All customers", Share: make(map[geo.ReportRegion]float64), Total: allTotal}
	for _, reg := range geo.ReportRegions {
		if allTotal > 0 {
			all.Share[reg] = 100 * float64(allRegion[reg]) / float64(allTotal)
		}
	}
	return append(out, all)
}

// Table3 reports observed changes to the upload-enable setting, split by
// the initial value (paper Table 3).
type Table3 struct {
	// Rows indexed by initial setting: false = "Disabled", true =
	// "Enabled".
	Rows map[bool]Table3Row
}

// Table3Row is one initial-setting cohort.
type Table3Row struct {
	Nodes      int
	PctZero    float64
	PctOne     float64
	PctTwoPlus float64
}

// ComputeTable3 counts setting changes between consecutive logins per GUID.
func ComputeTable3(in *Input) Table3 {
	type state struct {
		first, last bool
		changes     int
		seen        bool
	}
	// Logins are time-sorted by construction; track per GUID.
	st := make(map[id.GUID]*state)
	for i := range in.Log.Logins {
		l := &in.Log.Logins[i]
		s := st[l.GUID]
		if s == nil {
			st[l.GUID] = &state{first: l.UploadsEnabled, last: l.UploadsEnabled, seen: true}
			continue
		}
		if l.UploadsEnabled != s.last {
			s.changes++
			s.last = l.UploadsEnabled
		}
	}
	counts := map[bool][3]int{}
	nodes := map[bool]int{}
	for _, s := range st {
		c := counts[s.first]
		switch {
		case s.changes == 0:
			c[0]++
		case s.changes == 1:
			c[1]++
		default:
			c[2]++
		}
		counts[s.first] = c
		nodes[s.first]++
	}
	out := Table3{Rows: make(map[bool]Table3Row)}
	for _, init := range []bool{false, true} {
		n := nodes[init]
		row := Table3Row{Nodes: n}
		if n > 0 {
			c := counts[init]
			row.PctZero = 100 * float64(c[0]) / float64(n)
			row.PctOne = 100 * float64(c[1]) / float64(n)
			row.PctTwoPlus = 100 * float64(c[2]) / float64(n)
		}
		out.Rows[init] = row
	}
	return out
}

// Table4Row is one customer's fraction of upload-enabled peers.
type Table4Row struct {
	Customer   string
	PctEnabled float64
	Peers      int
}

// ComputeTable4 reproduces Table 4: the fraction of peers with content
// uploads enabled, grouped by the provider whose bundle installed the
// client.
func ComputeTable4(in *Input) []Table4Row {
	// Current setting per GUID: the last login wins.
	last := make(map[id.GUID]bool)
	for i := range in.Log.Logins {
		l := &in.Log.Logins[i]
		last[l.GUID] = l.UploadsEnabled
	}
	enabled := make(map[content.CPCode]int)
	total := make(map[content.CPCode]int)
	for _, p := range in.Pop.Peers {
		en, seen := last[p.GUID]
		if !seen {
			en = p.UploadsEnabledAtInstall
		}
		total[p.InstallCP]++
		if en {
			enabled[p.InstallCP]++
		}
	}
	var out []Table4Row
	for _, cust := range trace.Customers {
		row := Table4Row{Customer: cust.Name, Peers: total[cust.CP]}
		if row.Peers > 0 {
			row.PctEnabled = 100 * float64(enabled[cust.CP]) / float64(row.Peers)
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Customer < out[j].Customer })
	return out
}
