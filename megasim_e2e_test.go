package netsession

// Paper-scale end-to-end: the million-peer month (XXL tier) simulated,
// exported as a sealed segment store, and analyzed through the streaming
// parallel pass — on one box, inside an asserted memory budget. This is
// the full pipeline the paper ran on a month of production logs (§4.1),
// at the paper's population scale.
//
// The run takes tens of minutes and several GB of RAM, so it is gated:
//
//	NETSESSION_MEGASIM=1 go test -run TestMegaSimXXLEndToEnd -timeout 2h .

import (
	"encoding/json"
	"hash/fnv"
	"net/netip"
	"os"
	"runtime"
	"syscall"
	"testing"

	"netsession/internal/analysis"
	"netsession/internal/geo"
	"netsession/internal/logpipe"
)

const megaSimGate = "NETSESSION_MEGASIM"

// xxlPeakRSSMB mirrors the XXL tier budget in the sim benchmark ladder
// (~15 GB measured, dominated by the retained login records): the month
// must fit comfortably under 20 GiB.
const xxlPeakRSSMB = 20 * 1024

// logDigest hashes the full log set record by record, so the comparison
// never materializes the multi-GB JSON encoding of an XXL month.
func logDigest(t *testing.T, l *Log) uint64 {
	t.Helper()
	h := fnv.New64a()
	enc := json.NewEncoder(h)
	for i := range l.Downloads {
		if err := enc.Encode(&l.Downloads[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range l.Logins {
		if err := enc.Encode(&l.Logins[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i := range l.Registrations {
		if err := enc.Encode(&l.Registrations[i]); err != nil {
			t.Fatal(err)
		}
	}
	return h.Sum64()
}

func peakRSSMB(t *testing.T) int64 {
	t.Helper()
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		t.Fatalf("getrusage: %v", err)
	}
	return ru.Maxrss / 1024 // Linux reports KiB
}

func TestMegaSimXXLEndToEnd(t *testing.T) {
	if os.Getenv(megaSimGate) == "" {
		t.Skipf("set %s=1 to run the gated million-peer month", megaSimGate)
	}

	// Reference run: sequential engine, the determinism baseline.
	cfg := XXLScenario()
	cfg.Workers = 1
	res, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	downloads := len(res.Log.Downloads)
	if downloads == 0 {
		t.Fatal("XXL run produced no downloads")
	}
	t.Logf("workers=1: %d downloads / %d logins / %d registrations",
		downloads, len(res.Log.Logins), len(res.Log.Registrations))
	refDigest := logDigest(t, res.Log)

	// Export the reference run's download log as a sealed segment store,
	// each record annotated from the generating scape the way the control
	// plane annotates live reports.
	segDir := t.TempDir()
	w, err := logpipe.NewBulkWriter(segDir, 50_000)
	if err != nil {
		t.Fatal(err)
	}
	lookup := func(ip netip.Addr) analysis.GeoTag {
		if rec, ok := res.Scape.Lookup(ip); ok {
			return analysis.GeoTag{
				Country: string(rec.Country),
				ASN:     uint32(rec.ASN),
				Region:  geo.RegionOf(rec).String(),
			}
		}
		return analysis.GeoTag{}
	}
	for i := range res.Log.Downloads {
		if err := w.Append(analysis.OfflineFromRecord(&res.Log.Downloads[i], lookup)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Free the reference run before the sharded one: only its digest and
	// counts matter now, and holding two XXL log sets would double the
	// peak the RSS assertion guards.
	res = nil
	runtime.GC()

	// Sharded run: the worker pool must reproduce the reference month
	// byte for byte.
	cfg = XXLScenario()
	cfg.Workers = 4
	res4, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res4.Log.Downloads); got != downloads {
		t.Fatalf("workers=4 produced %d downloads, workers=1 produced %d", got, downloads)
	}
	if got := logDigest(t, res4.Log); got != refDigest {
		t.Fatalf("workers=4 log digest %016x differs from workers=1 digest %016x", got, refDigest)
	}
	res4 = nil
	runtime.GC()

	// Stream the exported store through the parallel analyzer: every
	// record accounted for, with memory bounded by distinct entities
	// rather than record count.
	sum, err := logpipe.SummarizeStore(segDir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Records != downloads {
		t.Fatalf("analyzer streamed %d records, store holds %d", sum.Records, downloads)
	}
	if sum.Summary.Downloads != downloads {
		t.Fatalf("summary counted %d downloads, want %d", sum.Summary.Downloads, downloads)
	}
	if sum.Figures == nil || sum.Figures.Render() == "" {
		t.Fatal("streaming figure pass produced no output")
	}

	if rss := peakRSSMB(t); rss > xxlPeakRSSMB {
		t.Fatalf("peak RSS %d MB exceeds the %d MB paper-scale budget", rss, xxlPeakRSSMB)
	} else {
		t.Logf("peak RSS %d MB (budget %d MB)", rss, xxlPeakRSSMB)
	}
}
