// Package netsession is a from-scratch reproduction of Akamai's NetSession
// peer-assisted (hybrid) CDN, as described in "Peer-Assisted Content
// Distribution in Akamai NetSession" (Zhao et al., IMC 2013).
//
// The package exposes three layers:
//
//   - A live system: Cluster starts an edge tier and a control plane
//     (connection nodes, database nodes, monitoring) on real sockets, and
//     NewPeer runs a NetSession Interface client that downloads content in
//     parallel from the edge (HTTP) and from other peers (a BitTorrent-like
//     swarming protocol without incentives), with hash verification,
//     upload limits and usage accounting.
//
//   - A deterministic simulator: RunScenario executes the same directory,
//     selection, policy and accounting code over a flow-level network model
//     at tens of thousands of peers and a month of virtual time.
//
//   - The paper's evaluation: Experiment wraps a simulation result and
//     reproduces every table and figure of the paper (Tables 1–4, Figures
//     2–12 and the headline statistics of Sections 5 and 6).
package netsession

import (
	"fmt"

	"netsession/internal/accounting"
	"netsession/internal/analysis"
	"netsession/internal/content"
	"netsession/internal/faults"
	"netsession/internal/geo"
	"netsession/internal/id"
	"netsession/internal/peer"
	"netsession/internal/protocol"
	"netsession/internal/selection"
	"netsession/internal/sim"
)

// Re-exported core types. The internal packages carry the implementation;
// these aliases are the supported public surface.
type (
	// Object is one distributable object version with its secure content ID.
	Object = content.Object
	// ObjectID is the secure per-version content identifier.
	ObjectID = content.ObjectID
	// CPCode identifies a content-provider account.
	CPCode = content.CPCode
	// GUID is the peer installation identifier.
	GUID = id.GUID
	// Peer is a running NetSession Interface client.
	Peer = peer.Client
	// PeerConfig configures a Peer.
	PeerConfig = peer.Config
	// Download is an in-progress Download-Manager transfer.
	Download = peer.Download
	// DownloadResult summarizes a finished transfer.
	DownloadResult = peer.Result
	// NATClass is a peer's NAT/firewall classification.
	NATClass = protocol.NATClass
	// SelectionPolicy is the control plane's peer-selection policy.
	SelectionPolicy = selection.Policy
	// Scenario parameterizes a simulation run.
	Scenario = sim.ScenarioConfig
	// ScenarioResult is a finished simulation.
	ScenarioResult = sim.Result
	// Log is the accounting log set (downloads, logins, registrations).
	Log = accounting.Log
	// FaultProfile configures deterministic fault injection for the live
	// cluster (ClusterConfig.EdgeFaults / CNFaults).
	FaultProfile = faults.Config
	// SimFaults configures fault injection inside the simulator
	// (Scenario.Faults).
	SimFaults = faults.SimConfig
)

// NAT classes, re-exported for PeerConfig.
const (
	NATNone           = protocol.NATNone
	NATFullCone       = protocol.NATFullCone
	NATRestricted     = protocol.NATRestricted
	NATPortRestricted = protocol.NATPortRestricted
	NATSymmetric      = protocol.NATSymmetric
	NATBlocked        = protocol.NATBlocked
)

// NewObject creates object metadata with its secure content ID.
// Size is in bytes; pieceSize <= 0 selects the 1 MiB default.
func NewObject(cp CPCode, url string, version uint32, size int64, pieceSize int, p2pEnabled bool) (*Object, error) {
	return content.NewObject(cp, url, version, size, pieceSize, p2pEnabled)
}

// DefaultSelectionPolicy returns the production-like locality-aware policy
// (up to 40 peers, diversity picks, NAT-compatibility filtering).
func DefaultSelectionPolicy() SelectionPolicy { return selection.DefaultPolicy() }

// DefaultScenario returns the experiment-scale simulation configuration.
func DefaultScenario() Scenario { return sim.DefaultScenario() }

// SmallScenario returns a fast configuration for tests and demos.
func SmallScenario() Scenario { return sim.SmallScenario() }

// XLScenario returns the 60k-peer month, the region-sharded scale target.
func XLScenario() Scenario { return sim.XLScenario() }

// MScenario returns the quarter-million-peer month.
func MScenario() Scenario { return sim.MScenario() }

// StreamingScenario returns the deadline-driven delivery scenario: Zipf-hot
// episodic demand, shorter serving sessions, and most requests consumed as
// fixed-bitrate streams reporting startup/rebuffer/deadline metrics.
func StreamingScenario() Scenario { return sim.StreamingScenario() }

// XXLScenario returns the million-peer month, the memory-lean engine's
// paper-scale target.
func XXLScenario() Scenario { return sim.XXLScenario() }

// RunScenario executes a simulation to completion.
func RunScenario(cfg Scenario) (*ScenarioResult, error) { return sim.Run(cfg) }

// NewPeer starts a NetSession Interface client. The returned Peer is live:
// its control connection is up and its swarm listener accepts connections.
func NewPeer(cfg PeerConfig) (*Peer, error) { return peer.New(cfg) }

// Experiment wraps a simulation result with the paper's analyses.
type Experiment struct {
	cfg Scenario
	res *ScenarioResult
	in  *analysis.Input
}

// RunExperiment runs a scenario and prepares its analyses.
func RunExperiment(cfg Scenario) (*Experiment, error) {
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, fmt.Errorf("netsession: experiment: %w", err)
	}
	return &Experiment{
		cfg: cfg,
		res: res,
		in: &analysis.Input{
			Log: res.Log, Pop: res.Pop, Catalog: res.Catalog,
			Atlas: res.Atlas, Scape: res.Scape,
			ControlPlaneServers: geo.NumRegions,
		},
	}, nil
}

// Result returns the raw simulation result.
func (e *Experiment) Result() *ScenarioResult { return e.res }

// Input returns the analysis input for custom analyses.
func (e *Experiment) Input() *analysis.Input { return e.in }

// Report renders every table and figure as text, in paper order.
func (e *Experiment) Report() string { return analysis.Report(e.in, e.cfg.Days) }

// Headlines returns the scalar summary quoted in the paper's running text.
func (e *Experiment) Headlines() analysis.Headlines {
	return analysis.ComputeHeadlines(e.in, e.cfg.Days)
}
